"""The durable, segment-based lineage store (``LineageStore``).

This is the storage engine behind ``DSLog(root, backend="segment")``: many
ProvRC tables packed into append-only segment files
(:mod:`repro.storage.segments`), indexed by one atomic JSON manifest
(:mod:`repro.storage.manifest`), read back *lazily* through an LRU table
cache with a byte budget.

Design points
-------------
* **O(manifest) open** — ``StoredCatalog`` hydrates lazy
  :class:`StoredLineageEntry` objects from manifest rows; no segment bytes
  are read (and no table is deserialized) until a query touches an entry.
  ``LineageStore.tables_deserialized`` counts actual decodes so tests and
  benchmarks can prove it.
* **Both orientations persisted** — the legacy one-file-per-table format
  stored only the backward table and rebuilt the forward orientation at
  load by decompressing and re-compressing every table; segments store both
  so reopening never touches table bytes at all.  Storage accounting
  (``storage_bytes``) still counts only the backward orientation, matching
  the paper's long-term storage metric.
* **Crash safety** — segment appends happen before the manifest save; the
  manifest is swapped in atomically.  Unreferenced segment bytes are inert
  garbage until :meth:`LineageStore.compact` rewrites the live records into
  fresh segments and deletes the old files.
* **LRU byte budget** — materialized tables live in
  :class:`TableCache`; once the configured budget is exceeded the least
  recently used tables are dropped and will be re-read from their segment
  on next use, so catalogs larger than memory stay queryable.
* **Zero-copy hydration** — records are served by per-segment mmap
  readers (:class:`~repro.storage.segments.SegmentReader`, one handle per
  segment for the store's lifetime) as views into the mapped pages, and
  ``deserialize_table`` turns those views into read-only narrow-dtype
  column arrays without copying the payload.  The cache therefore charges
  each table its actual (narrow) view footprint, and a table pins its
  backing mmap through the arrays' buffer chain — which is what lets
  compaction retire a mapped segment while hydrated tables stay valid.
* **Coalesced appends** — the active ``SegmentWriter`` buffers appends
  and hands each batch to the OS as one write + one fsync at ``sync()``
  (the group-commit step), instead of two writes and a flush per record.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from ..core.compressed import CompressedLineage
from ..core.serialize import deserialize_table, serialize_table
from ..faults import FaultPlan
from ..obs import REGISTRY
from .catalog import Catalog, LineageEntry
from .manifest import Manifest, dump_manifest, load_manifest, write_manifest
from .segments import SegmentReader, SegmentWriter

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "TableRef",
    "TableCache",
    "StoredLineageEntry",
    "LineageStore",
    "StoredCatalog",
]

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024
DEFAULT_SEGMENT_MAX_BYTES = 16 * 1024 * 1024

_CACHE_HITS = REGISTRY.counter(
    "dslog_table_cache_hits_total", "Table cache lookups served from memory"
)
_CACHE_MISSES = REGISTRY.counter(
    "dslog_table_cache_misses_total", "Table cache lookups that fell through to a segment"
)
_CACHE_EVICTIONS = REGISTRY.counter(
    "dslog_table_cache_evictions_total", "Tables dropped by the LRU byte budget"
)
# process-wide resident table bytes, maintained as inc/dec deltas because
# many TableCache instances (one per shard) feed the same series
_CACHE_BYTES = REGISTRY.gauge(
    "dslog_table_cache_bytes", "Materialized table bytes resident across all caches"
)
_TABLES_DESERIALIZED = REGISTRY.counter(
    "dslog_tables_deserialized_total", "Segment payloads decoded into tables"
)
_MANIFEST_PUBLISHES = REGISTRY.counter(
    "dslog_manifest_publishes_total", "Atomic manifest publishes (durability points)"
)
_COMPACTIONS = REGISTRY.counter(
    "dslog_compactions_total", "Store compactions (live-record rewrites)"
)


class TableRef(NamedTuple):
    """Address of one serialized table inside a segment file."""

    segment: str
    offset: int
    length: int

    def to_json(self) -> dict:
        return {"segment": self.segment, "offset": self.offset, "length": self.length}

    @classmethod
    def from_json(cls, data: dict) -> "TableRef":
        return cls(str(data["segment"]), int(data["offset"]), int(data["length"]))


class TableCache:
    """LRU cache of materialized tables under an in-memory byte budget.

    Thread-safe: the concurrent lineage service reads tables from worker,
    reader and snapshot threads at once, and an OrderedDict being reordered
    from two threads corrupts itself — every access holds a short mutex.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.budget_bytes = int(budget_bytes)
        self._items: "OrderedDict[TableRef, CompressedLineage]" = OrderedDict()
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._items)

    def get(self, ref: TableRef) -> Optional[CompressedLineage]:
        with self._lock:
            table = self._items.get(ref)
            if table is None:
                self.misses += 1
                _CACHE_MISSES.inc()
                return None
            self._items.move_to_end(ref)
            self.hits += 1
            _CACHE_HITS.inc()
            return table

    def put(self, ref: TableRef, table: CompressedLineage) -> None:
        evicted = 0
        evicted_bytes = 0
        with self._lock:
            if ref in self._items:
                self._items.move_to_end(ref)
                return
            self._items[ref] = table
            added = table.nbytes()
            self.current_bytes += added
            # evict least recently used down to the budget, but never the entry
            # just inserted: a single oversized table would otherwise thrash
            while self.current_bytes > self.budget_bytes and len(self._items) > 1:
                _old_ref, old_table = self._items.popitem(last=False)
                dropped = old_table.nbytes()
                self.current_bytes -= dropped
                self.evictions += 1
                evicted += 1
                evicted_bytes += dropped
        _CACHE_BYTES.inc(added - evicted_bytes)
        if evicted:
            _CACHE_EVICTIONS.inc(evicted)

    def clear(self) -> None:
        with self._lock:
            dropped = self.current_bytes
            self._items.clear()
            self.current_bytes = 0
        _CACHE_BYTES.dec(dropped)

    def stats(self) -> dict:
        with self._lock:
            return {
                "tables": len(self._items),
                "bytes": self.current_bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class StoredLineageEntry:
    """A catalog entry whose tables live in segments until first touched.

    Duck-typed against :class:`~repro.storage.catalog.LineageEntry`
    (``in_name`` / ``out_name`` / ``op_name`` / ``reused`` / ``version`` /
    ``backward`` / ``forward`` / ``table_keyed_on`` / ``storage_bytes``);
    the two orientation attributes are properties that pull the table
    through the store's LRU cache on access.
    """

    __slots__ = ("store", "in_name", "out_name", "op_name", "reused", "version",
                 "backward_ref", "forward_ref")

    def __init__(
        self,
        store: "LineageStore",
        in_name: str,
        out_name: str,
        backward_ref: TableRef,
        forward_ref: TableRef,
        op_name: Optional[str] = None,
        reused: bool = False,
        version: int = 1,
    ) -> None:
        self.store = store
        self.in_name = in_name
        self.out_name = out_name
        self.backward_ref = backward_ref
        self.forward_ref = forward_ref
        self.op_name = op_name
        self.reused = reused
        self.version = version

    @property
    def backward(self) -> CompressedLineage:
        return self.store.load_table(self.backward_ref)

    @property
    def forward(self) -> CompressedLineage:
        return self.store.load_table(self.forward_ref)

    def table_keyed_on(self, array_name: str) -> CompressedLineage:
        if array_name == self.out_name:
            return self.backward
        if array_name == self.in_name:
            return self.forward
        raise KeyError(f"array {array_name!r} is not part of this lineage entry")

    def storage_bytes(self, gzip: bool = True) -> int:
        """Long-term (backward) footprint.  When the requested format is the
        one on disk this is just the manifest-recorded record length — no
        table bytes are touched."""
        if gzip == self.store.gzip:
            return self.backward_ref.length
        return len(serialize_table(self.backward, gzip=gzip))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoredLineageEntry({self.in_name}->{self.out_name}, "
            f"segment={self.backward_ref.segment})"
        )


class LineageStore:
    """Segment files + manifest + table cache for one catalog directory."""

    def __init__(
        self,
        root: Union[str, Path],
        gzip: bool = True,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        faults: Optional[FaultPlan] = None,
        scope: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # fault-injection plan threaded into every segment writer/reader this
        # store opens; scope names the store's failure domain (shard name)
        self.faults = faults
        self.scope = scope if scope is not None else self.root.name
        existing = load_manifest(self.root)
        if existing is not None:
            self.manifest = existing
            self.gzip = existing.gzip  # the on-disk format is authoritative
        else:
            self.manifest = Manifest(gzip=gzip)
            self.gzip = gzip
        self.segment_max_bytes = int(segment_max_bytes)
        self.cache = TableCache(cache_bytes)
        self.tables_deserialized = 0
        self._writer: Optional[SegmentWriter] = None
        # mmap-backed reader per segment, opened lazily on first read and
        # kept for the store's lifetime: hydration costs zero syscalls after
        # the first touch, and record payloads are served as views into the
        # mapped pages (the zero-copy fast path)
        self._readers: Dict[str, SegmentReader] = {}
        self._reader_lock = threading.Lock()
        # refs invalidated by compaction resolve through this chain for the
        # rest of the session (the manifest itself is rewritten in place)
        self._remap: Dict[TableRef, TableRef] = {}
        # snapshot pins: while any reader holds a pin, compaction retires old
        # segment files instead of deleting them, so refs the reader resolved
        # before the compaction stay readable from the original bytes
        self._pin_lock = threading.Lock()
        self._pins = 0
        self._retired: List[str] = []
        # group-commit write accounting, carried across writer rollovers
        self._closed_coalesced_writes = 0
        self._closed_coalesced_records = 0
        self._closed_torn_writes = 0
        self._drop_orphan_segments()

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------
    def _segment_path(self, name: str) -> Path:
        return self.root / name

    def _new_segment_name(self) -> str:
        name = f"segment-{self.manifest.next_segment_id:06d}.seg"
        self.manifest.next_segment_id += 1
        return name

    def _drop_orphan_segments(self) -> None:
        """Remove segment files no manifest generation references (leftovers
        of a crash between writing fresh segments and swapping the manifest)."""
        live = set(self.manifest.segments)
        for path in self.root.glob("segment-*.seg"):
            if path.name not in live:
                path.unlink()

    def _retire_writer(self) -> None:
        """Close the active writer, folding its write counters into the
        store-lifetime totals."""
        if self._writer is None:
            return
        self._writer.close()
        self._closed_coalesced_writes += self._writer.coalesced_writes
        self._closed_coalesced_records += self._writer.coalesced_records
        self._closed_torn_writes += self._writer.torn_writes
        self._writer = None

    def write_stats(self) -> dict:
        """Cumulative group-commit write coalescing stats: how many OS
        writes carried how many appended records."""
        writes = self._closed_coalesced_writes
        records = self._closed_coalesced_records
        writer = self._writer
        if writer is not None:
            writes += writer.coalesced_writes
            records += writer.coalesced_records
        return {"coalesced_writes": writes, "coalesced_records": records}

    def torn_epoch(self) -> int:
        """Monotonic count of torn (short) writes this store has suffered.

        A torn write destroys appended-but-unflushed bytes whose offsets
        manifest rows may already reference; the ingest pipeline compares
        this epoch around each apply so it never acknowledges a ticket
        whose record bytes may have been destroyed mid-flight."""
        torn = self._closed_torn_writes
        writer = self._writer
        if writer is not None:
            torn += writer.torn_writes
        return torn

    def _active_writer(self) -> SegmentWriter:
        if self._writer is not None and self._writer.size < self.segment_max_bytes:
            return self._writer
        if self._writer is not None:
            self._retire_writer()
        if self.manifest.segments:
            last = self._segment_path(self.manifest.segments[-1])
            if last.exists() and last.stat().st_size < self.segment_max_bytes:
                self._writer = SegmentWriter(last, faults=self.faults, scope=self.scope)
                return self._writer
        name = self._new_segment_name()
        self.manifest.segments.append(name)
        self._writer = SegmentWriter(
            self._segment_path(name), faults=self.faults, scope=self.scope
        )
        return self._writer

    def start_fresh_segment(self) -> SegmentWriter:
        """Retire the active writer and open a brand-new segment file.

        Scrub-and-repair uses this so salvage writes never land in the very
        segment being evacuated (the normal ``_active_writer`` would happily
        keep appending to a damaged tail segment)."""
        self._retire_writer()
        name = self._new_segment_name()
        self.manifest.segments.append(name)
        self._writer = SegmentWriter(
            self._segment_path(name), faults=self.faults, scope=self.scope
        )
        return self._writer

    # ------------------------------------------------------------------
    # table I/O
    # ------------------------------------------------------------------
    def append_table(self, table: CompressedLineage) -> TableRef:
        """Serialize one table into the active segment; returns its ref.

        The ref is also remembered on the table object itself
        (``_segment_ref``) so a later reuse-state export can reference the
        already-written bytes instead of appending a duplicate record.
        """
        payload = serialize_table(table, gzip=self.gzip)
        return self.append_payload(payload, table=table)

    def append_payload(
        self, payload: bytes, table: Optional[CompressedLineage] = None
    ) -> TableRef:
        """Append pre-serialized table bytes to the active segment.

        The concurrent ingest pipeline serializes (and gzips) tables outside
        the per-shard append lock and hands only the finished payload to the
        store, so the lock covers nothing but the file append itself.
        """
        writer = self._active_writer()
        offset, length = writer.append(payload)
        ref = TableRef(writer.path.name, offset, length)
        if table is not None:
            table._segment_ref = ref
            table._segment_owner = self
            self.cache.put(ref, table)
        return ref

    def ref_for(self, table: CompressedLineage) -> Optional[TableRef]:
        """The segment ref this table was written at (or loaded from), if
        any, resolved through any compactions since.  A ref minted by a
        *different* store (another shard of a sharded catalog) is not
        returned — its ``(segment, offset)`` coordinates mean nothing in
        this store's directory."""
        if getattr(table, "_segment_owner", None) is not self:
            return None
        ref = getattr(table, "_segment_ref", None)
        return self.resolve(ref) if ref is not None else None

    def resolve(self, ref: TableRef) -> TableRef:
        """Follow the compaction remap chain to the ref's current address."""
        while ref in self._remap:
            ref = self._remap[ref]
        return ref

    def _reader_for(self, segment: str) -> SegmentReader:
        """The cached mmap reader of one segment (opened on first use)."""
        with self._reader_lock:
            reader = self._readers.get(segment)
            if reader is None:
                reader = SegmentReader(
                    self._segment_path(segment), faults=self.faults, scope=self.scope
                )
                self._readers[segment] = reader
            return reader

    def _drop_readers(self, segments: List[str]) -> None:
        """Release the cached readers of retired/deleted segments.  Views
        already handed out stay valid — the mappings survive through the
        hydrated tables' buffer references until the last view is dropped."""
        with self._reader_lock:
            for name in segments:
                reader = self._readers.pop(name, None)
                if reader is not None:
                    reader.close()

    def reader_stats(self) -> dict:
        with self._reader_lock:
            return {
                "open_readers": len(self._readers),
                "mapped_bytes": sum(r.mapped_size for r in self._readers.values()),
            }

    def load_table(self, ref: TableRef) -> CompressedLineage:
        attempts = 0
        while True:
            resolved = self.resolve(ref)
            table = self.cache.get(resolved)
            if table is not None:
                return table
            writer = self._writer
            if (
                writer is not None
                and writer.path.name == resolved.segment
                and writer.pending_bytes
            ):
                # the record may still sit in the writer's coalescing
                # buffer (appended, not yet group-committed): hand the
                # batch to the OS so the mapping can see it
                writer.flush_pending()
            try:
                payload = self._reader_for(resolved.segment).read(
                    resolved.offset, resolved.length
                )
            except FileNotFoundError:
                # an unpinned reader can race a compaction: it resolved the
                # ref before the remap was published, then the old segment
                # was deleted (and its mmap dropped).  The remap is
                # installed BEFORE the deletion, so re-resolving now must
                # land on the relocated record.
                attempts += 1
                if attempts > 3:
                    raise
                continue
            table = deserialize_table(payload)
            self.tables_deserialized += 1
            _TABLES_DESERIALIZED.inc()
            table._segment_ref = resolved
            table._segment_owner = self
            self.cache.put(resolved, table)
            return table

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def sync(self, serialize_lock: Optional[threading.RLock] = None) -> int:
        """Fsync appended records, then atomically publish the manifest.

        *serialize_lock*, when given, is held only while the manifest is
        serialized to JSON — concurrent writers mutate the manifest's row
        lists under the same lock, and a dict resized mid-dump raises — and
        released before the fsync'd file write, which needs no lock.
        """
        if self._writer is not None:
            self._writer.sync()
        with serialize_lock if serialize_lock is not None else contextlib.nullcontext():
            data = dump_manifest(self.manifest)
        if self.faults is not None:
            self.faults.check("manifest.write", self.scope)
        write_manifest(self.root, data)
        _MANIFEST_PUBLISHES.inc()
        return self.manifest.generation

    def generation_vector(self) -> Tuple[int, ...]:
        """Single-element counterpart of the sharded store's vector, so the
        serving tier reports durable generations uniformly per backend."""
        return (self.manifest.generation,)

    def close(self) -> None:
        self._retire_writer()
        with self._reader_lock:
            for reader in self._readers.values():
                reader.close()
            self._readers = {}
        with self._pin_lock:
            if self._pins == 0:
                self._delete_retired()
        # release this store's contribution to the resident-bytes gauge
        # (compaction repopulates the cache lazily after its own close)
        self.cache.clear()

    def reset_io(self) -> None:
        """Drop every open file handle and cached table, as a process
        restart would: best-effort close of the active writer (a final
        flush that fails against a broken disk is *swallowed* — the bytes
        are simply lost, exactly like a crash, and the dangling refs are
        scrub's to find), all mmap readers closed, LRU cache cleared.
        The store stays usable; writers and readers reopen lazily.
        """
        writer, self._writer = self._writer, None
        if writer is not None:
            try:
                writer.close()
            except OSError:
                if not writer._fh.closed:
                    writer._fh.close()
            self._closed_coalesced_writes += writer.coalesced_writes
            self._closed_coalesced_records += writer.coalesced_records
            self._closed_torn_writes += writer.torn_writes
        with self._reader_lock:
            for reader in self._readers.values():
                reader.close()
            self._readers = {}
        self.cache.clear()

    def scrub(self, repair: bool = False) -> dict:
        """fsck this store: verify every manifest-referenced record against
        the segment files (structure and checksums), find torn tails and
        orphan segments; with ``repair=True``, quarantine the damage and
        rebuild what the intact bytes allow.  See
        :func:`repro.storage.scrub.scrub_store` for the full report and
        repair contract."""
        from .scrub import scrub_store

        return scrub_store(self, repair=repair)

    # ------------------------------------------------------------------
    # snapshot pins
    # ------------------------------------------------------------------
    def pin(self) -> None:
        """Hold compaction's segment-file deletion until :meth:`release_pin`."""
        with self._pin_lock:
            self._pins += 1

    def release_pin(self) -> None:
        with self._pin_lock:
            if self._pins <= 0:
                raise RuntimeError("release_pin() without a matching pin()")
            self._pins -= 1
            if self._pins == 0:
                self._delete_retired()

    @property
    def pins(self) -> int:
        return self._pins

    def _delete_retired(self) -> None:
        """Delete segment files a compaction retired while pins were held.
        Called with ``_pin_lock`` held.  Readers re-opened for the retired
        files in the meantime (a pinned snapshot resolving a dead, unmapped
        ref) are dropped with them — otherwise each retired segment would
        pin its mapping and fd for the store's lifetime."""
        self._drop_readers(self._retired)
        for name in self._retired:
            path = self._segment_path(name)
            if path.exists():
                path.unlink()
        self._retired = []

    # ------------------------------------------------------------------
    # accounting + compaction
    # ------------------------------------------------------------------
    def segment_bytes(self) -> int:
        """Bytes currently occupied by all live segment files."""
        total = 0
        for name in self.manifest.segments:
            path = self._segment_path(name)
            if path.exists():
                total += path.stat().st_size
        if self._writer is not None:
            # the active writer may be ahead of the filesystem metadata
            total = max(total, self._writer.size)
        return total

    def live_bytes(self) -> int:
        """Payload bytes reachable from the manifest (live records only)."""
        return sum(ref["length"] for ref in self.manifest.iter_table_refs())

    def compact(self, serialize_lock: Optional[threading.RLock] = None) -> dict:
        """Rewrite every live record into fresh segments, drop the rest.

        The manifest must reflect the state to preserve (callers sync
        first).  Live payloads are copied byte-for-byte — no table is
        deserialized — into new segment files; every ref dict inside the
        manifest is rewritten in place, the manifest is atomically swapped,
        and only then are the old segment files deleted.  A crash anywhere
        in between leaves either the old or the new generation fully
        intact.  Returns a stats dict (bytes before/after, records copied).

        While snapshot readers hold pins (:meth:`pin`), the old segment
        files are *retired* instead of deleted: refs resolved before the
        compaction remain readable from the original bytes until the last
        pin is released, at which point the retired files are removed.
        """
        bytes_before = self.segment_bytes()
        old_segments = list(self.manifest.segments)
        self.close()

        self.manifest.segments = []
        copied = 0
        mapping: Dict[TableRef, TableRef] = {}
        for ref_dict in self.manifest.iter_table_refs():
            old_ref = self.resolve(TableRef.from_json(ref_dict))
            new_ref = mapping.get(old_ref)
            if new_ref is None:
                payload = bytes(
                    self._reader_for(old_ref.segment).read(old_ref.offset, old_ref.length)
                )
                writer = self._active_writer()
                offset, length = writer.append(payload)
                new_ref = TableRef(writer.path.name, offset, length)
                mapping[old_ref] = new_ref
                copied += 1
            ref_dict.update(new_ref.to_json())
        self.sync(serialize_lock=serialize_lock)

        # publish the remap BEFORE deleting the old files: a concurrent
        # reader that resolves a stale ref from here on lands on the new
        # address, and one caught mid-read when the old file disappears
        # re-resolves through this remap (load_table's retry loop)
        self._remap.update(mapping)
        with self._pin_lock:
            if self._pins > 0:
                self._retired.extend(old_segments)
                retired = True
            else:
                for name in old_segments:
                    path = self._segment_path(name)
                    if path.exists():
                        path.unlink()
                retired = False
        # drop the retired segments' mmap readers either way: deleting a
        # mapped file is safe (POSIX keeps the pages), and tables hydrated
        # before the compaction keep their views valid through the
        # mappings' reference chain until the last view is released
        self._drop_readers(old_segments)
        self.cache.clear()
        _COMPACTIONS.inc()
        return {
            "records_copied": copied,
            "segments_before": len(old_segments),
            "segments_after": len(self.manifest.segments),
            "bytes_before": bytes_before,
            "bytes_after": self.segment_bytes(),
            "reclaimed_bytes": bytes_before - self.segment_bytes(),
            "segments_retired": len(old_segments) if retired else 0,
        }


class StoredCatalog(Catalog):
    """A :class:`Catalog` whose entries are durably backed by a store.

    Freshly ingested entries are appended to the segment files immediately
    (both orientations); entries hydrated from a manifest are lazy
    :class:`StoredLineageEntry` objects that read through the store's LRU
    cache on first query.
    """

    def __init__(self, store: LineageStore) -> None:
        super().__init__()
        self.store = store
        self._entry_refs: Dict[Tuple[str, str], Tuple[TableRef, TableRef]] = {}

    def add_compressed(
        self,
        backward: CompressedLineage,
        forward: CompressedLineage,
        op_name: Optional[str] = None,
        reused: bool = False,
        replace: bool = False,
    ) -> LineageEntry:
        entry = super().add_compressed(
            backward, forward, op_name=op_name, reused=reused, replace=replace
        )
        pair = (entry.in_name, entry.out_name)
        backward_ref = self.store.append_table(entry.backward)
        forward_ref = self.store.append_table(entry.forward)
        self._entry_refs[pair] = (backward_ref, forward_ref)
        # the catalog keeps only the lazy view: the materialized tables stay
        # hot in the LRU cache but remain *evictable*, so a bulk-ingest
        # session's memory stays bounded by cache_bytes like any other
        self._entries[pair] = StoredLineageEntry(
            self.store,
            in_name=entry.in_name,
            out_name=entry.out_name,
            backward_ref=backward_ref,
            forward_ref=forward_ref,
            op_name=entry.op_name,
            reused=entry.reused,
            version=entry.version,
        )
        return entry

    def install_lazy_entry(self, entry: StoredLineageEntry) -> None:
        """Register a manifest-hydrated entry without touching its tables."""
        pair = (entry.in_name, entry.out_name)
        self._entries[pair] = entry
        self._entry_refs[pair] = (entry.backward_ref, entry.forward_ref)
        self.version += 1

    def entry_refs(self, pair: Tuple[str, str]) -> Tuple[TableRef, TableRef]:
        backward_ref, forward_ref = self._entry_refs[pair]
        return self.store.resolve(backward_ref), self.store.resolve(forward_ref)

    def materialize_all(self) -> int:
        """Force-load every entry's tables (the eager-open code path);
        returns the number of tables materialized or found cached."""
        count = 0
        for entry in self.entries():
            entry.backward
            entry.forward
            count += 2
        return count
