"""DSLog: the lineage storage, query and reuse manager (the paper's system).

This module exposes the public API described in Section III of the paper:

* :meth:`DSLog.define_array` — declare a tracked array with a shape.
* :meth:`DSLog.add_lineage` — ingest the lineage between two arrays, either
  from an explicit :class:`~repro.core.relation.LineageRelation` or from a
  capture callable (``capture(out_cell) -> input cells``).
* :meth:`DSLog.register_operation` — ingest the lineage of a whole operation
  (one relation per input/output array pair), with optional automatic reuse
  of previously captured lineage (``base_sig`` / ``dim_sig`` / ``gen_sig``).
* :meth:`DSLog.prov_query` — forward/backward lineage queries along a path
  of arrays, answered in situ over the compressed tables.  A two-array path
  with no directly stored entry is resolved automatically through the
  lineage graph (shortest stored path(s), unioned when several tie).
* :meth:`DSLog.impact` / :meth:`DSLog.dependencies` /
  :meth:`DSLog.lineage_summary` — graph analytics over the whole catalog.

Lineage is compressed with ProvRC on ingest and never decompressed for
query processing.

Storage backends
----------------
``backend="memory"`` (the default) keeps the catalog in RAM; with *root*
set, every backward table is additionally written as one legacy
``.provrc[.gz]`` file per entry.  ``backend="segment"`` runs on the durable
segment store (:mod:`repro.storage.store`): tables are appended to segment
files, all metadata (op names, operation records, reuse-predictor state)
rides in an atomic manifest, and reopening a directory is O(manifest) —
tables materialize lazily, through an LRU cache, on first query.
``backend="sharded"`` partitions the same durable format over N shard
directories (:mod:`repro.service.shards`) keyed by a stable hash of each
entry's ``(input, output)`` pair: per-shard segment files, manifests,
locks, cache budgets and compaction, which is what the concurrent lineage
service (:class:`repro.service.LineageService`) ingests into from many
writer threads at once.  :meth:`DSLog.snapshot` hands out a read-only,
snapshot-isolated view pinned at the current catalog state.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .service.query import QueryExecutor
    from .service.server import LineageServer

from .core.compressed import CompressedLineage
from .core.query import CellBoxSet, QueryResult, execute_path
from .core.relation import LineageRelation
from .core.serialize import write_compressed
from .faults import FaultPlan
from .graph import LineageGraph
from .obs import REGISTRY
from .reuse.signatures import OperationSignature, ReuseManager
from .storage.catalog import ArrayInfo, Catalog, LineageEntry, OperationRecord
from .storage.store import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_SEGMENT_MAX_BYTES,
    LineageStore,
    StoredCatalog,
    StoredLineageEntry,
    TableRef,
)

__all__ = ["DSLog"]

Cell = Tuple[int, ...]
CaptureFn = Callable[[Cell], Iterable[Cell]]

_PROV_QUERIES = REGISTRY.counter(
    "dslog_prov_queries_total", "In-process prov_query calls (outermost only)"
)
_PROV_SECONDS = REGISTRY.histogram(
    "dslog_prov_query_seconds", "Wall time per outermost in-process prov_query"
)
# graph-planned queries recurse through prov_query once per shortest path;
# this thread-local guard keeps the metrics to one sample per user call
_PROV_ACTIVE = threading.local()


class DSLog:
    """The DSLog lineage index.

    Parameters
    ----------
    root:
        Directory backing the catalog.  Required for the segment backend;
        optional for the memory backend, where it enables the legacy
        one-file-per-entry flush of backward tables.
    gzip:
        Whether on-disk tables use the ProvRC-GZip format (the default in
        the paper's prototype).  For an existing segment directory the
        manifest's recorded format wins.
    reuse_confirmations:
        The ``m`` parameter of the automatic reuse predictor.
    backend:
        ``"memory"``, ``"segment"`` or ``"sharded"`` (see the module
        docstring).
    cache_bytes:
        Byte budget of the segment backend's LRU table cache (split evenly
        across shards for the sharded backend).
    autosync:
        When true (default), the segment and sharded backends publish a new
        manifest generation after every ``add_lineage`` /
        ``register_operation`` call.  Bulk ingest should pass ``False`` and
        call :meth:`sync` (or :meth:`close`) once at the end; the
        concurrent service always runs with ``False`` and group-commits.
    segment_max_bytes:
        Roll-over threshold for segment files.
    num_shards:
        Shard count of the sharded backend (ignored otherwise; an existing
        directory's ``SHARDS.json`` wins).
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        gzip: bool = True,
        reuse_confirmations: int = 1,
        backend: str = "memory",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        autosync: bool = True,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        num_shards: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if backend not in ("memory", "segment", "sharded"):
            raise ValueError(
                f"unknown backend {backend!r}; use 'memory', 'segment' or 'sharded'"
            )
        if backend in ("segment", "sharded") and root is None:
            raise ValueError(f"the {backend} backend needs a root directory")
        self.backend = backend
        self.root = Path(root) if root is not None else None
        self.gzip = gzip
        self.faults = faults
        self.reuse_confirmations = int(reuse_confirmations)
        self.autosync = autosync
        self._reuse: Optional[ReuseManager] = None
        self._reuse_init_lock = threading.Lock()
        self._reuse_synced_count: Optional[int] = None
        self._pending_reuse_state: Optional[dict] = None
        self._graph: Optional[LineageGraph] = None
        self._graph_lock = threading.Lock()
        # path tuple -> (catalog version, per-hop tables); repeated queries
        # over the same path skip catalog entry resolution entirely
        self._path_cache: Dict[Tuple[str, ...], Tuple[int, List[CompressedLineage]]] = {}
        # (array, cells) -> converted CellBoxSet; content-keyed (immutable
        # tuples), so repeated queries skip the cell-to-box conversion
        self._query_box_cache: Dict[Tuple[str, Tuple[Cell, ...]], CellBoxSet] = {}

        if backend == "segment":
            self.store: Optional[LineageStore] = LineageStore(
                self.root,
                gzip=gzip,
                cache_bytes=cache_bytes,
                segment_max_bytes=segment_max_bytes,
                faults=faults,
            )
            self.gzip = self.store.gzip
            self.catalog: Catalog = StoredCatalog(self.store)
            self._hydrate_from_manifest()
        elif backend == "sharded":
            from .service.shards import DEFAULT_NUM_SHARDS, ShardedCatalog, ShardedLineageStore

            self.store = ShardedLineageStore(
                self.root,
                num_shards=num_shards if num_shards is not None else DEFAULT_NUM_SHARDS,
                gzip=gzip,
                cache_bytes=cache_bytes,
                segment_max_bytes=segment_max_bytes,
                faults=faults,
            )
            self.gzip = self.store.gzip
            self.catalog = ShardedCatalog(self.store)
            self._hydrate_from_shards()
        else:
            self.store = None
            self.catalog = Catalog()
            self._reuse = ReuseManager(confirmations_required=self.reuse_confirmations)
            if self.root is not None:
                self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # lazy state (segment backend)
    # ------------------------------------------------------------------
    @property
    def reuse(self) -> ReuseManager:
        """The reuse predictor, hydrated from the manifest on first touch
        (so a cold open stays O(manifest) even for reuse-heavy catalogs).
        First-touch construction is guarded by a lock: concurrent service
        workers racing the hydration would otherwise each build a manager
        and silently discard one's observations."""
        if self._reuse is None:
            with self._reuse_init_lock:
                if self._reuse is None:
                    manager = ReuseManager(confirmations_required=self.reuse_confirmations)
                    if self._pending_reuse_state:
                        manager.import_state(
                            self._pending_reuse_state,
                            lambda ref: self.store.load_table(TableRef.from_json(ref)),
                        )
                    self._reuse = manager
        return self._reuse

    def _hydrate_from_manifest(self) -> None:
        """Rebuild catalog metadata from the manifest — arrays, lazy entries,
        operation records and the (still serialized) reuse state.  No table
        bytes are read here."""
        manifest = self.store.manifest
        for name, shape in manifest.arrays.items():
            self.catalog.define_array(name, tuple(shape))
        for row in manifest.entries:
            self.catalog.install_lazy_entry(
                StoredLineageEntry(
                    self.store,
                    in_name=row["in"],
                    out_name=row["out"],
                    backward_ref=TableRef.from_json(row["backward"]),
                    forward_ref=TableRef.from_json(row["forward"]),
                    op_name=row.get("op_name"),
                    reused=bool(row.get("reused", False)),
                    version=int(row.get("version", 1)),
                )
            )
        for row in manifest.operations:
            record = OperationRecord(
                op_name=row["op_name"],
                in_arrs=tuple(row["in_arrs"]),
                out_arrs=tuple(row["out_arrs"]),
                op_args=dict(row.get("op_args", {})),
                reuse_level=row.get("reuse_level"),
                entries=[tuple(pair) for pair in row.get("entries", [])],
            )
            self.catalog.add_operation(record)
        self._pending_reuse_state = manifest.reuse

    def _hydrate_from_shards(self) -> None:
        """Rebuild catalog metadata from every shard's manifest: arrays,
        operation records and reuse state from the meta shard, lazy entries
        from each home shard.  No table bytes are read.

        Operation records are replayed through the *base* catalog methods
        (not the sharded overrides) because the meta manifest already holds
        their rows — re-appending them would duplicate every record on the
        next publish.
        """
        meta = self.store.meta.manifest
        for name, shape in meta.arrays.items():
            Catalog.define_array(self.catalog, name, tuple(shape))
        for shard_idx, shard in enumerate(self.store.shards):
            for row in shard.manifest.entries:
                self.catalog.install_lazy_entry(
                    StoredLineageEntry(
                        shard,
                        in_name=row["in"],
                        out_name=row["out"],
                        backward_ref=TableRef.from_json(row["backward"]),
                        forward_ref=TableRef.from_json(row["forward"]),
                        op_name=row.get("op_name"),
                        reused=bool(row.get("reused", False)),
                        version=int(row.get("version", 1)),
                    ),
                    row,
                )
        for row in meta.operations:
            Catalog.add_operation(
                self.catalog,
                OperationRecord(
                    op_name=row["op_name"],
                    in_arrs=tuple(row["in_arrs"]),
                    out_arrs=tuple(row["out_arrs"]),
                    op_args=dict(row.get("op_args", {})),
                    reuse_level=row.get("reuse_level"),
                    entries=[tuple(pair) for pair in row.get("entries", [])],
                ),
            )
        self._pending_reuse_state = meta.reuse

    # ------------------------------------------------------------------
    # array + lineage definition
    # ------------------------------------------------------------------
    def define_array(self, name: str, shape: Sequence[int]) -> ArrayInfo:
        """Declare a tracked array (the ``Array(name, shape)`` API call)."""
        return self.catalog.define_array(name, tuple(shape))

    def add_lineage(
        self,
        in_arr: str,
        out_arr: str,
        relation: Optional[LineageRelation] = None,
        capture: Optional[CaptureFn] = None,
        op_name: Optional[str] = None,
        replace: bool = False,
    ) -> LineageEntry:
        """Ingest lineage between two tracked arrays (the ``Lineage`` API call)."""
        in_info = self.catalog.array(in_arr)
        out_info = self.catalog.array(out_arr)
        if relation is None:
            if capture is None:
                raise ValueError("either a relation or a capture callable is required")
            relation = LineageRelation.from_capture(
                capture,
                out_shape=out_info.shape,
                in_shape=in_info.shape,
                out_name=out_arr,
                in_name=in_arr,
            )
        else:
            relation = self._renamed(relation, in_arr, out_arr, in_info, out_info)
        entry = self.catalog.add_relation(relation, op_name=op_name, replace=replace)
        self._flush(entry)
        self._maybe_sync()
        return entry

    @staticmethod
    def _renamed(
        relation: LineageRelation,
        in_arr: str,
        out_arr: str,
        in_info: ArrayInfo,
        out_info: ArrayInfo,
    ) -> LineageRelation:
        if relation.in_shape != in_info.shape or relation.out_shape != out_info.shape:
            raise ValueError(
                "relation shapes do not match the declared array shapes: "
                f"{relation.in_shape}->{relation.out_shape} vs "
                f"{in_info.shape}->{out_info.shape}"
            )
        return LineageRelation(
            out_shape=relation.out_shape,
            in_shape=relation.in_shape,
            rows=relation.rows,
            out_name=out_arr,
            in_name=in_arr,
            out_axes=relation.out_axes,
            in_axes=relation.in_axes,
        )

    # ------------------------------------------------------------------
    # operation registration with reuse
    # ------------------------------------------------------------------
    def register_operation(
        self,
        op_name: str,
        in_arrs: Sequence[str],
        out_arrs: Sequence[str],
        relations: Optional[Mapping[Tuple[str, str], LineageRelation]] = None,
        captures: Optional[Mapping[Tuple[str, str], CaptureFn]] = None,
        input_data: Optional[Mapping[str, np.ndarray]] = None,
        op_args: Optional[Mapping[str, Any]] = None,
        reuse: bool = True,
        replace: bool = False,
    ) -> OperationRecord:
        """Register one executed operation and ingest (or reuse) its lineage.

        ``relations`` and/or ``captures`` provide the lineage for each
        ``(input array, output array)`` pair; when *reuse* is enabled and a
        matching signature exists, the capture step is bypassed entirely.
        ``input_data`` (name → ndarray) is needed for ``base_sig`` matching;
        when omitted, only shape-based signatures are considered.
        """
        in_arrs = tuple(in_arrs)
        out_arrs = tuple(out_arrs)
        in_shapes = [self.catalog.array(name).shape for name in in_arrs]
        out_shapes = [self.catalog.array(name).shape for name in out_arrs]

        if input_data is not None:
            signature = OperationSignature.build(
                op_name,
                [np.asarray(input_data[name]) for name in in_arrs],
                out_shapes,
                op_args=op_args,
            )
        else:
            signature = OperationSignature(
                op_name=op_name,
                input_fingerprints=tuple("" for _ in in_arrs),
                in_shapes=tuple(in_shapes),
                out_shapes=tuple(out_shapes),
                op_args=OperationSignature.build(op_name, [], [], op_args).op_args,
            )

        record = OperationRecord(
            op_name=op_name,
            in_arrs=in_arrs,
            out_arrs=out_arrs,
            op_args=dict(op_args or {}),
        )

        # Reuse mappings are keyed positionally ((input index, output index))
        # so that lineage captured under one set of array names can populate
        # an operation applied to differently named arrays.
        reused_tables: Optional[Dict[Tuple[int, int], CompressedLineage]] = None
        if reuse:
            decision = self.reuse.lookup(signature)
            if decision.reused:
                reused_tables = decision.tables
                record.reuse_level = decision.level

        stored: Dict[Tuple[int, int], CompressedLineage] = {}
        for in_idx, in_name in enumerate(in_arrs):
            for out_idx, out_name in enumerate(out_arrs):
                pair = (in_name, out_name)
                position = (in_idx, out_idx)
                if reused_tables is not None and position in reused_tables:
                    entry = self._store_reused(
                        reused_tables[position], pair, op_name, replace=replace
                    )
                else:
                    relation = self._capture_pair(
                        pair, relations, captures, in_arrs, out_arrs
                    )
                    if relation is None:
                        continue
                    entry = self.catalog.add_relation(
                        relation, op_name=op_name, replace=replace
                    )
                    self._flush(entry)
                stored[position] = entry.backward
                record.entries.append(pair)

        if reused_tables is None and stored and reuse:
            self.reuse.observe(signature, stored)
        self.catalog.add_operation(record)
        self._maybe_sync()
        return record

    def _store_reused(self, source: CompressedLineage, pair, op_name, replace=False) -> LineageEntry:
        in_name, out_name = pair
        backward = CompressedLineage(
            key_side="output",
            out_name=out_name,
            in_name=in_name,
            out_shape=self.catalog.array(out_name).shape,
            in_shape=self.catalog.array(in_name).shape,
            key_lo=source.key_lo.copy(),
            key_hi=source.key_hi.copy(),
            val_kind=source.val_kind.copy(),
            val_ref=source.val_ref.copy(),
            val_lo=source.val_lo.copy(),
            val_hi=source.val_hi.copy(),
            out_axes=source.out_axes,
            in_axes=source.in_axes,
        )
        forward = self._reorient(backward)
        entry = self.catalog.add_compressed(
            backward, forward, op_name=op_name, reused=True, replace=replace
        )
        self._flush(entry)
        return entry

    @staticmethod
    def _reorient(backward: CompressedLineage) -> CompressedLineage:
        """Build the forward orientation by re-compressing the decompressed rows.

        Reused tables arrive only in backward orientation; the forward table
        is rebuilt once at ingest (never during queries).
        """
        from .core.provrc import compress

        return compress(backward.decompress(), key="input")

    def _capture_pair(self, pair, relations, captures, in_arrs, out_arrs):
        in_name, out_name = pair
        relation = None
        if relations is not None and pair in relations:
            relation = relations[pair]
        elif captures is not None and pair in captures:
            relation = LineageRelation.from_capture(
                captures[pair],
                out_shape=self.catalog.array(out_name).shape,
                in_shape=self.catalog.array(in_name).shape,
                out_name=out_name,
                in_name=in_name,
            )
        elif relations and len(in_arrs) == 1 and len(out_arrs) == 1:
            # A single-pair operation whose relations dict is keyed under
            # some other pair used to be accepted blindly; that silently
            # ingested lineage between the wrong arrays.  Reject it.
            raise ValueError(
                f"relations are keyed {sorted(relations)!r}, but the "
                f"operation's only (input, output) pair is {pair!r}; key the "
                "relation under that pair"
            )
        if relation is None:
            return None
        return self._renamed(
            relation, in_name, out_name, self.catalog.array(in_name), self.catalog.array(out_name)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def prov_query(
        self,
        path: Sequence[str],
        query_cells: Union[Iterable[Cell], CellBoxSet, Sequence[slice]],
        merge: bool = True,
    ) -> QueryResult:
        """Lineage query along a path of arrays (``prov_query`` in the paper).

        ``path[0]`` is the array the query cells refer to; the result
        contains the linked cells of ``path[-1]``.  Forward and backward
        queries are expressed purely by the order of the path.

        A two-array path with no directly stored entry is planned through
        the lineage graph: the query runs along the shortest stored path(s)
        between the two arrays, and when several equally short paths exist
        (e.g. a diamond DAG) the per-path results are unioned.
        """
        if len(path) < 2:
            raise ValueError("a query path needs at least two arrays")

        outermost = not getattr(_PROV_ACTIVE, "active", False)
        if outermost:
            _PROV_ACTIVE.active = True
            started = time.monotonic()
            try:
                return self._prov_query_impl(path, query_cells, merge)
            finally:
                _PROV_ACTIVE.active = False
                _PROV_QUERIES.inc()
                _PROV_SECONDS.observe(time.monotonic() - started)
        return self._prov_query_impl(path, query_cells, merge)

    def _prov_query_impl(
        self,
        path: Sequence[str],
        query_cells: Union[Iterable[Cell], CellBoxSet, Sequence[slice]],
        merge: bool,
    ) -> QueryResult:
        key = tuple(path)
        # read the version BEFORE resolving entries: if a concurrent writer
        # lands mid-resolution, the tables are cached under the older
        # version and simply rebuilt on the next query — never served as
        # fresher than they are
        version = self.catalog.version
        cached = self._path_cache.get(key)
        if cached is not None and cached[0] == version:
            tables = cached[1]
        else:
            for name in path:
                self.catalog.array(name)  # raises KeyError for unknown arrays
            if len(path) == 2:
                try:
                    self.catalog.entry_between(path[0], path[1])
                except KeyError:
                    # no direct entry: let the graph plan the hop list
                    return self._planned_query(path[0], path[1], query_cells, merge)
            tables = []
            for first, second in zip(path, path[1:]):
                entry, _ = self.catalog.entry_between(first, second)
                tables.append(entry.table_keyed_on(first))
            if len(self._path_cache) >= 128:
                self._path_cache.clear()
            self._path_cache[key] = (version, tables)

        query = self._as_box_set(path[0], query_cells)
        return execute_path(tables, query, merge=merge)

    def _planned_query(self, src, dst, query_cells, merge: bool) -> QueryResult:
        paths = self.graph.shortest_paths(src, dst)
        if not paths:
            raise KeyError(f"no lineage stored between {src!r} and {dst!r}")
        results = [self.prov_query(p, query_cells, merge=merge) for p in paths]
        return QueryResult.union(results, merge=merge)

    @property
    def graph(self) -> LineageGraph:
        """The lineage graph of the current catalog.

        Built once, then maintained *incrementally*: each access folds any
        entries added since the last one into the existing adjacency index
        (:meth:`LineageGraph.refresh`), keyed on the catalog's generation
        counter — an unchanged catalog costs two comparisons, a changed one
        costs O(new entries), never a full rebuild.
        """
        with self._graph_lock:
            if self._graph is None:
                self._graph = LineageGraph(self.catalog)
            else:
                self._graph.refresh()
            return self._graph

    def impact(self, name: str) -> Dict[str, int]:
        """Arrays transitively derived from *name*, with hop distances."""
        return self.graph.impact(name)

    def dependencies(self, name: str) -> Dict[str, int]:
        """Arrays *name* transitively depends on, with hop distances."""
        return self.graph.dependencies(name)

    def lineage_summary(self) -> dict:
        """Aggregate statistics of the whole lineage graph."""
        return self.graph.lineage_summary()

    def _as_box_set(self, array_name: str, query_cells) -> CellBoxSet:
        info = self.catalog.array(array_name)
        if isinstance(query_cells, CellBoxSet):
            if query_cells.array_name != array_name:
                raise ValueError(
                    f"query targets array {query_cells.array_name!r} but the path starts at {array_name!r}"
                )
            return query_cells
        if not isinstance(query_cells, (list, tuple, np.ndarray)):
            query_cells = list(query_cells)
        if len(query_cells) and isinstance(query_cells[0], slice):
            return CellBoxSet.from_slices(array_name, info.shape, query_cells)
        # memoize the conversion by content: the key is an immutable copy of
        # the cells, so re-issued queries (dashboards, benchmark rounds) skip
        # the cell-to-box merge without any staleness risk
        if not isinstance(query_cells, np.ndarray):
            try:
                key = (array_name, tuple(query_cells))
                cached = self._query_box_cache.get(key)
            except TypeError:  # cells not hashable (e.g. lists): no caching
                key = None
            if key is not None:
                if cached is None:
                    cached = CellBoxSet.from_cells(array_name, info.shape, query_cells)
                    if len(self._query_box_cache) >= 128:
                        self._query_box_cache.clear()
                    self._query_box_cache[key] = cached
                return cached
        return CellBoxSet.from_cells(array_name, info.shape, query_cells)

    # ------------------------------------------------------------------
    # storage accounting and persistence
    # ------------------------------------------------------------------
    def storage_bytes(self, gzip: Optional[bool] = None) -> int:
        """Total size of the long-term (backward) tables."""
        return self.catalog.storage_bytes(gzip=self.gzip if gzip is None else gzip)

    def _flush(self, entry: LineageEntry) -> None:
        if self.backend != "memory" or self.root is None:
            return  # segment/shard entries are appended by the catalog itself
        filename = f"{entry.in_name}__{entry.out_name}.provrc"
        if self.gzip:
            filename += ".gz"
        write_compressed(entry.backward, self.root / filename, gzip=self.gzip)

    def _maybe_sync(self) -> None:
        if self.backend in ("segment", "sharded") and self.autosync:
            self.sync()

    def sync(self) -> Optional[int]:
        """Publish a new manifest generation (durable backends only).

        Segment backend: serializes the catalog metadata — arrays, entry
        rows with their segment refs, operation records, reuse state — into
        the store's manifest and saves it atomically; returns the new
        generation.  Sharded backend: exports the reuse state if it changed
        and publishes every *dirty* shard's manifest (rows are maintained
        incrementally at ingest, so nothing is rebuilt); returns the summed
        generation vector.  Memory backend: ``None``.
        """
        if self.backend == "sharded":
            return self._sync_sharded()
        if self.backend != "segment":
            return None
        manifest = self.store.manifest
        manifest.arrays = {
            name: list(info.shape) for name, info in self.catalog.arrays.items()
        }
        rows = []
        for entry in self.catalog.entries():
            pair = (entry.in_name, entry.out_name)
            backward_ref, forward_ref = self.catalog.entry_refs(pair)
            rows.append(
                {
                    "in": entry.in_name,
                    "out": entry.out_name,
                    "op_name": entry.op_name,
                    "reused": entry.reused,
                    "version": entry.version,
                    "backward": backward_ref.to_json(),
                    "forward": forward_ref.to_json(),
                }
            )
        manifest.entries = rows
        manifest.operations = [
            {
                "op_name": record.op_name,
                "in_arrs": list(record.in_arrs),
                "out_arrs": list(record.out_arrs),
                "op_args": record.op_args,
                "reuse_level": record.reuse_level,
                "entries": [list(pair) for pair in record.entries],
            }
            for record in self.catalog.operations
        ]
        self._export_reuse_into(manifest)
        return self.store.sync()

    def _sync_sharded(self) -> int:
        """Group-commit step of the sharded backend: refresh the meta
        shard's reuse state when it changed, then publish each dirty
        shard's manifest.  Returns the sum of the generation vector (a
        monotone progress counter).

        Safe to call from several threads (the committer and an explicit
        ``compact()``/``flush()`` caller): the store's maintenance lock
        serializes whole publishes against each other and against
        compaction, the manifest assignment happens under ``meta_lock``,
        and per-shard publishes under each shard's append lock.
        """
        with self.store.maintenance_lock:
            if self._reuse is not None and self._reuse_synced_count != self._reuse.mutation_count:
                count = self._reuse.mutation_count
                state = self._reuse.export_state(self._save_reuse_table)
                with self.store.meta_lock:
                    self.store.meta.manifest.reuse = state
                    self.store.mark_dirty(0)
                self._reuse_synced_count = count
            self.store.sync_dirty()
            return sum(self.store.generation_vector())

    def _export_reuse_into(self, manifest) -> bool:
        """Write the reuse-predictor state into *manifest* (segment
        backend), skipping the export entirely when nothing changed since
        the last sync (the export walks every stored signature table, so
        autosync-per-op catalogs would otherwise pay it on every publish).
        Returns whether the manifest's reuse field was rewritten."""
        if self._reuse is None:
            manifest.reuse = self._pending_reuse_state
            return False
        if self._reuse_synced_count == self._reuse.mutation_count:
            return False
        manifest.reuse = self._reuse.export_state(self._save_reuse_table)
        self._reuse_synced_count = self._reuse.mutation_count
        return True

    def _save_reuse_table(self, table: CompressedLineage) -> dict:
        ref = self.store.ref_for(table)
        if ref is None:
            ref = self.store.append_table(table)
        return ref.to_json()

    def compact(self, shard: Optional[int] = None) -> dict:
        """Rewrite live records into fresh segments and drop dead bytes
        (replaced entry versions, unreferenced crash leftovers).  Returns
        the store's compaction stats; for the sharded backend, a
        ``{shard index: stats}`` dict (pass *shard* to compact one shard
        while the others keep serving)."""
        if self.backend == "sharded":
            self.sync()
            stats = self.store.compact(shard=shard)
            self._pending_reuse_state = self.store.meta.manifest.reuse
            return stats
        if self.backend != "segment":
            raise RuntimeError("compact() requires the segment or sharded backend")
        self.sync()
        stats = self.store.compact()
        self._pending_reuse_state = self.store.manifest.reuse
        return stats

    def scrub(self, repair: bool = False) -> dict:
        """fsck the durable catalog: verify every manifest-referenced
        record (structure and checksums), find torn tails and orphan
        segments; with ``repair=True``, quarantine the damage and heal
        with zero valid-record loss (a damaged orientation is rebuilt from
        its intact sibling; see :mod:`repro.storage.scrub`).  Entries
        whose *both* orientations were damaged are dropped from the
        catalog.  Returns the scrub report (sharded backend: a per-shard
        report under ``"shards"``)."""
        if self.backend not in ("segment", "sharded"):
            raise RuntimeError("scrub() requires the segment or sharded backend")
        if self.backend == "segment":
            report = self.store.scrub(repair=repair)
            dropped = report["dropped_entries"]
        else:
            report = self.store.scrub(repair=repair)
            dropped = [
                pair
                for shard_report in report["shards"].values()
                for pair in shard_report["dropped_entries"]
            ]
        if repair and dropped:
            # the manifest rows are already gone; drop the in-memory lazy
            # entries too, or the next sync would resurrect dangling refs
            for raw in dropped:
                pair = tuple(raw)
                self.catalog._entries.pop(pair, None)
                if hasattr(self.catalog, "_entry_refs"):
                    self.catalog._entry_refs.pop(pair, None)
                if hasattr(self.catalog, "_rows"):
                    self.catalog._rows.pop(pair, None)
            self.catalog.version += 1
            self._graph = None
            self._path_cache.clear()
        if repair and not report.get("clean", True):
            self.refresh_entry_refs()
        return report

    def refresh_entry_refs(self) -> None:
        """Re-point in-memory entries at the manifest's current refs.

        A repair (scrub, shard reopen) can rebuild an orientation at a new
        address that the remap chain cannot carry: a misdirected ref
        aliases another entry's *valid* record, so remapping it would
        misdirect that donor in turn.  The healed manifest rows are
        authoritative — fold their refs back into the catalog so live
        queries resolve the healed records, and so the segment backend's
        next :meth:`sync` (which rebuilds rows from these refs) does not
        republish the stale, pre-repair addresses.
        """
        if self.backend == "segment":
            items = [((row["in"], row["out"]), row) for row in self.store.manifest.entries]
        elif self.backend == "sharded":
            items = list(self.catalog._rows.items())
        else:
            return
        for pair, row in items:
            backward_ref = TableRef.from_json(row["backward"])
            forward_ref = TableRef.from_json(row["forward"])
            entry = self.catalog._entries.get(pair)
            if isinstance(entry, StoredLineageEntry):
                entry.backward_ref = backward_ref
                entry.forward_ref = forward_ref
            if hasattr(self.catalog, "_entry_refs") and pair in self.catalog._entry_refs:
                self.catalog._entry_refs[pair] = (backward_ref, forward_ref)

    def executor(
        self,
        max_workers: Optional[int] = None,
        cache_entries: Optional[int] = None,
    ) -> "QueryExecutor":
        """A scale-out query executor over this catalog: parallel per-shard
        fan-out behind a generation-keyed result cache
        (:mod:`repro.service.query`).  The caller owns it (close it, or use
        it as a context manager)."""
        from .service.query import DEFAULT_CACHE_ENTRIES, QueryExecutor

        return QueryExecutor(
            self,
            max_workers=max_workers,
            cache_entries=DEFAULT_CACHE_ENTRIES if cache_entries is None else cache_entries,
        )

    def serve(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        max_workers: Optional[int] = None,
        cache_entries: Optional[int] = None,
        coalesce_ms: Optional[float] = None,
        start: bool = True,
        transport: str = "http",
        rpc_port: int = 0,
    ) -> "LineageServer":
        """Expose this catalog over the network on a background thread.

        *transport* picks the wire: ``"http"`` (the default) returns a
        :class:`~repro.service.server.LineageServer` speaking the JSON
        API, ``"rpc"`` an :class:`~repro.service.rpc.RPCServer` speaking
        the framed binary protocol, and ``"both"`` a
        :class:`~repro.service.rpc.DualServer` running the two side by
        side over one shared executor and result cache (*port* binds the
        HTTP listener, *rpc_port* the RPC one).

        ``port=0`` picks a free port; read it (or the full URL / RPC
        address) off the returned server.  ``coalesce_ms`` opts into
        query-request coalescing (``None`` defers to the
        ``DSLOG_COALESCE_MS`` environment variable).  Pass
        ``start=False`` to get an unstarted server for
        ``serve_forever()`` on a dedicated process's main thread.
        """
        from .service.query import DEFAULT_CACHE_ENTRIES
        from .service.rpc import DualServer, RPCServer
        from .service.server import LineageServer

        entries = DEFAULT_CACHE_ENTRIES if cache_entries is None else cache_entries
        if transport == "http":
            server = LineageServer(
                self,
                host=host,
                port=port,
                max_workers=max_workers,
                cache_entries=entries,
                coalesce_ms=coalesce_ms,
            )
        elif transport == "rpc":
            server = RPCServer(
                self,
                host=host,
                port=port,
                max_workers=max_workers,
                cache_entries=entries,
                coalesce_ms=coalesce_ms,
            )
        elif transport == "both":
            server = DualServer(
                self,
                host=host,
                http_port=port,
                rpc_port=rpc_port,
                max_workers=max_workers,
                cache_entries=entries,
                coalesce_ms=coalesce_ms,
            )
        else:
            raise ValueError(
                f"unknown transport {transport!r}; use 'http', 'rpc' or 'both'"
            )
        return server.start() if start else server

    def snapshot(self) -> "DSLog":
        """A read-only, snapshot-isolated view of the catalog as of now.

        The view holds a consistent copy of the catalog metadata (arrays,
        entries, operation records) pinned at the current per-shard
        generation vector; ingest and compaction on this log never change
        what the view's queries see.  Close the view (or use it as a
        context manager) to release its pins so compaction can reclaim
        retired segment files.
        """
        from .service.snapshot import take_snapshot

        return take_snapshot(self)

    def close(self) -> None:
        """Flush pending state and release file handles (durable backends)."""
        if self.backend in ("segment", "sharded"):
            self.sync()
            self.store.close()

    def __enter__(self) -> "DSLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @classmethod
    def load(cls, root: Union[str, Path], gzip: bool = True, **kwargs) -> "DSLog":
        """Re-open a DSLog directory written by a previous session.

        A directory with a root ``SHARDS.json`` reopens on the sharded
        backend; one with a segment-store manifest reopens on the segment
        backend.  Both are O(manifest), with op names, operation records
        and reuse state intact, and table bytes left on disk until first
        query.

        A legacy directory (one ``.provrc[.gz]`` file per entry) is read
        eagerly: only the long-term backward tables exist on disk, so the
        forward orientation of each entry is rebuilt at load time and the
        per-operation metadata is gone — ingest into a
        ``backend="segment"`` log to keep it.
        """
        from .service.shards import load_shards_file
        from .storage.manifest import load_manifest

        kwargs.pop("backend", None)  # the on-disk layout decides the backend

        if load_shards_file(root) is not None:
            return cls(root=root, gzip=gzip, backend="sharded", **kwargs)
        if load_manifest(root) is not None:
            return cls(root=root, gzip=gzip, backend="segment", **kwargs)

        from .core.provrc import compress
        from .core.serialize import read_compressed

        log = cls(root=root, gzip=gzip, **kwargs)
        pattern = "*.provrc.gz" if gzip else "*.provrc"
        for path in sorted(Path(root).glob(pattern)):
            backward = read_compressed(path)
            log.catalog.define_array(backward.in_name, backward.in_shape)
            log.catalog.define_array(backward.out_name, backward.out_shape)
            forward = compress(backward.decompress(), key="input")
            log.catalog.add_compressed(backward, forward)
        return log
