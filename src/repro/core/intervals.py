"""Closed integer intervals and axis-aligned integer boxes.

These are the primitive value types used throughout the ProvRC compressed
representation and the in-situ query processor.  An :class:`Interval` is a
closed range ``[lo, hi]`` of integers (both ends inclusive, matching the
paper's ``[low, high]`` notation).  A :class:`Box` is a tuple of intervals,
one per array axis, and describes a rectangular set of array cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = [
    "Interval",
    "Box",
    "ranges_from_integers",
    "merge_adjacent_intervals",
    "union_length",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @classmethod
    def point(cls, value: int) -> "Interval":
        """Return the degenerate interval containing a single integer."""
        return cls(value, value)

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    @property
    def is_point(self) -> bool:
        """Whether the interval contains exactly one integer."""
        return self.lo == self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the intersection with *other*, or ``None`` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one integer."""
        return self.lo <= other.hi and other.lo <= self.hi

    def touches(self, other: "Interval") -> bool:
        """Whether the intervals overlap or are adjacent (mergeable)."""
        return self.lo <= other.hi + 1 and other.lo <= self.hi + 1

    def union_hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both intervals."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shift(self, delta: int) -> "Interval":
        """Return the interval translated by *delta*."""
        return Interval(self.lo + delta, self.hi + delta)

    def add(self, other: "Interval") -> "Interval":
        """Minkowski sum ``{x + y | x in self, y in other}``."""
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def to_tuple(self) -> Tuple[int, int]:
        return (self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_point:
            return f"[{self.lo}]"
        return f"[{self.lo},{self.hi}]"


@dataclass(frozen=True)
class Box:
    """An axis-aligned rectangular set of integer index tuples."""

    intervals: Tuple[Interval, ...]

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "Box":
        return cls(tuple(Interval(lo, hi) for lo, hi in pairs))

    @classmethod
    def from_cell(cls, cell: Sequence[int]) -> "Box":
        return cls(tuple(Interval.point(int(v)) for v in cell))

    @property
    def ndim(self) -> int:
        return len(self.intervals)

    def __len__(self) -> int:
        count = 1
        for interval in self.intervals:
            count *= len(interval)
        return count

    def __contains__(self, cell: Sequence[int]) -> bool:
        if len(cell) != self.ndim:
            return False
        return all(int(v) in interval for v, interval in zip(cell, self.intervals))

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.cells())

    def cells(self) -> Iterator[Tuple[int, ...]]:
        """Yield every index tuple contained in the box."""

        def recurse(prefix: Tuple[int, ...], rest: Tuple[Interval, ...]):
            if not rest:
                yield prefix
                return
            head, tail = rest[0], rest[1:]
            for value in head:
                yield from recurse(prefix + (value,), tail)

        yield from recurse((), self.intervals)

    def intersect(self, other: "Box") -> "Box | None":
        """Return the intersection box, or ``None`` if the boxes are disjoint."""
        if self.ndim != other.ndim:
            raise ValueError("cannot intersect boxes of different dimensionality")
        out = []
        for left, right in zip(self.intervals, other.intervals):
            overlap = left.intersect(right)
            if overlap is None:
                return None
            out.append(overlap)
        return Box(tuple(out))

    def to_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(interval.to_tuple() for interval in self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Box(" + " x ".join(repr(i) for i in self.intervals) + ")"


def ranges_from_integers(values: Iterable[int]) -> list[Interval]:
    """Encode a set of integers as a minimal list of disjoint intervals.

    This is the single-attribute range encoding primitive from Section IV
    of the paper, e.g. ``{1, 2, 3, 4, 9, 12, 13, 14, 15}`` becomes
    ``[[1, 4], [9, 9], [12, 15]]``.
    """
    ordered = sorted(set(int(v) for v in values))
    if not ordered:
        return []
    out: list[Interval] = []
    lo = hi = ordered[0]
    for value in ordered[1:]:
        if value == hi + 1:
            hi = value
        else:
            out.append(Interval(lo, hi))
            lo = hi = value
    out.append(Interval(lo, hi))
    return out


def union_length(lo: np.ndarray, hi: np.ndarray) -> int:
    """Number of distinct integers covered by a union of closed intervals.

    Fully vectorized: sort by ``lo``, track the running maximum ``hi`` to
    detect where a new disjoint run starts, and sum per-run extents.  Used by
    the query engine to count 1-D results without materializing a mask.
    """
    lo = np.asarray(lo, dtype=np.int64).ravel()
    hi = np.asarray(hi, dtype=np.int64).ravel()
    if lo.size == 0:
        return 0
    order = np.argsort(lo, kind="stable")
    lo, hi = lo[order], hi[order]
    running_hi = np.maximum.accumulate(hi)
    # a run breaks where the next interval starts beyond the covered prefix
    new_run = np.ones(lo.size, dtype=bool)
    new_run[1:] = lo[1:] > running_hi[:-1]
    firsts = np.flatnonzero(new_run)
    run_hi = running_hi[np.append(firsts[1:] - 1, lo.size - 1)]
    return int(np.sum(run_hi - lo[firsts] + 1))


def merge_adjacent_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Coalesce overlapping or adjacent intervals into a minimal disjoint list."""
    ordered = sorted(intervals, key=lambda i: (i.lo, i.hi))
    if not ordered:
        return []
    out = [ordered[0]]
    for interval in ordered[1:]:
        if out[-1].touches(interval):
            out[-1] = out[-1].union_hull(interval)
        else:
            out.append(interval)
    return out
