"""Serialization of ProvRC tables and the ProvRC-GZip variant.

The on-disk format is a compact self-describing binary: a JSON header
(array names, shapes, axis names, key orientation, column dtypes) followed
by the raw bytes of each columnar array, each downcast to the smallest
integer dtype that can represent its values.  ``ProvRC-GZip`` (the format
DSLog uses by default, Section VII.B) is simply this payload passed through
zlib, mirroring how the paper stacks GZip on top of the main algorithm.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .compressed import CompressedLineage

__all__ = [
    "serialize_compressed",
    "deserialize_compressed",
    "serialize_compressed_gzip",
    "deserialize_compressed_gzip",
    "serialize_table",
    "deserialize_table",
    "write_compressed",
    "read_compressed",
]

_MAGIC = b"PRVC"
_COLUMNS = ("key_lo", "key_hi", "val_kind", "val_ref", "val_lo", "val_hi")


def _smallest_int_dtype(array: np.ndarray) -> np.dtype:
    """Pick the narrowest signed integer dtype that can hold *array*."""
    if array.size == 0:
        return np.dtype(np.int8)
    lo = int(array.min())
    hi = int(array.max())
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


def serialize_compressed(table: CompressedLineage) -> bytes:
    """Serialize a compressed lineage table to bytes (no general compression)."""
    columns = {}
    payload = bytearray()
    for name in _COLUMNS:
        array = getattr(table, name)
        dtype = _smallest_int_dtype(array)
        cast = np.ascontiguousarray(array.astype(dtype))
        columns[name] = {"dtype": dtype.str, "shape": list(cast.shape)}
        payload.extend(cast.tobytes())
    header = {
        "key_side": table.key_side,
        "out_name": table.out_name,
        "in_name": table.in_name,
        "out_shape": list(table.out_shape),
        "in_shape": list(table.in_shape),
        "out_axes": list(table.out_axes),
        "in_axes": list(table.in_axes),
        "columns": columns,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + bytes(payload)


def deserialize_compressed(data: bytes) -> CompressedLineage:
    """Inverse of :func:`serialize_compressed`."""
    if data[:4] != _MAGIC:
        raise ValueError("not a ProvRC serialized table")
    (header_len,) = struct.unpack("<I", data[4:8])
    header = json.loads(data[8 : 8 + header_len].decode("utf-8"))
    offset = 8 + header_len
    arrays = {}
    for name in _COLUMNS:
        meta = header["columns"][name]
        dtype = np.dtype(meta["dtype"])
        shape = tuple(meta["shape"])
        count = int(np.prod(shape)) if shape else 0
        nbytes = count * dtype.itemsize
        arr = np.frombuffer(data[offset : offset + nbytes], dtype=dtype).reshape(shape)
        arrays[name] = arr.astype(np.int64)
        offset += nbytes
    return CompressedLineage(
        key_side=header["key_side"],
        out_name=header["out_name"],
        in_name=header["in_name"],
        out_shape=tuple(header["out_shape"]),
        in_shape=tuple(header["in_shape"]),
        key_lo=arrays["key_lo"],
        key_hi=arrays["key_hi"],
        val_kind=arrays["val_kind"],
        val_ref=arrays["val_ref"],
        val_lo=arrays["val_lo"],
        val_hi=arrays["val_hi"],
        out_axes=tuple(header["out_axes"]),
        in_axes=tuple(header["in_axes"]),
    )


def serialize_compressed_gzip(table: CompressedLineage, level: int = 6) -> bytes:
    """ProvRC-GZip: zlib applied to the ProvRC serialization."""
    return zlib.compress(serialize_compressed(table), level)


def deserialize_compressed_gzip(data: bytes) -> CompressedLineage:
    return deserialize_compressed(zlib.decompress(data))


def serialize_table(table: CompressedLineage, gzip: bool = False) -> bytes:
    """Serialize one table in either format (the segment-record payload)."""
    return serialize_compressed_gzip(table) if gzip else serialize_compressed(table)


def deserialize_table(data: bytes) -> CompressedLineage:
    """Inverse of :func:`serialize_table`, sniffing the format from the
    magic bytes (zlib payloads never start with the ProvRC magic)."""
    if data[:4] == _MAGIC:
        return deserialize_compressed(data)
    return deserialize_compressed_gzip(data)


def write_compressed(
    table: CompressedLineage,
    path: Union[str, Path],
    gzip: bool = False,
) -> int:
    """Write a table to disk and return the file size in bytes."""
    data = serialize_compressed_gzip(table) if gzip else serialize_compressed(table)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return len(data)


def read_compressed(path: Union[str, Path], gzip: Optional[bool] = None) -> CompressedLineage:
    """Read a table written by :func:`write_compressed`.

    When *gzip* is ``None`` the format is sniffed from the magic bytes.
    """
    data = Path(path).read_bytes()
    if gzip is None:
        gzip = data[:4] != _MAGIC
    return deserialize_compressed_gzip(data) if gzip else deserialize_compressed(data)
