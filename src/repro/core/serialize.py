"""Serialization of ProvRC tables and the ProvRC-GZip variant.

The on-disk format is a compact self-describing binary: a JSON header
(array names, shapes, axis names, key orientation, column dtypes) followed
by the raw bytes of each columnar array, each downcast to the smallest
integer dtype that can represent its values.  ``ProvRC-GZip`` (the format
DSLog uses by default, Section VII.B) is simply this payload passed through
zlib, mirroring how the paper stacks GZip on top of the main algorithm.

Hydration is **zero-copy**: :func:`deserialize_compressed` accepts any
buffer (``bytes``, ``memoryview``, an mmap'd segment record) and returns
read-only ``np.frombuffer`` views directly into it, at the stored narrow
dtypes — no per-column slice copies and no ``astype(int64)`` upcast.  A
table stored as int8 therefore occupies its on-disk footprint in memory,
and the backing buffer (e.g. the segment mmap) stays alive for exactly as
long as any column view references it.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .compressed import CompressedLineage

__all__ = [
    "serialize_compressed",
    "deserialize_compressed",
    "serialize_compressed_gzip",
    "deserialize_compressed_gzip",
    "serialize_table",
    "deserialize_table",
    "write_compressed",
    "read_compressed",
    "read_column_arrays",
]

_MAGIC = b"PRVC"
_COLUMNS = ("key_lo", "key_hi", "val_kind", "val_ref", "val_lo", "val_hi")

# dtype-string -> np.dtype cache: hydration decodes six columns per table
# and np.dtype('<i1') parsing is a measurable share of a small-table decode
_DTYPE_CACHE: Dict[str, np.dtype] = {}


def _dtype_of(spec: str) -> np.dtype:
    dtype = _DTYPE_CACHE.get(spec)
    if dtype is None:
        dtype = _DTYPE_CACHE[spec] = np.dtype(spec)
    return dtype

# chunk size of the single-pass min/max scan: large enough to amortize the
# numpy call overhead, small enough that each chunk stays in L2 so the max
# reduction re-reads cache-hot bytes instead of making a second memory pass
_MINMAX_CHUNK = 65_536


def _minmax(flat: np.ndarray) -> Tuple[int, int]:
    """Min and max of a flat integer array in one pass over memory.

    Each chunk is reduced for both bounds while its bytes are cache-hot,
    so the array is streamed from memory once instead of twice (``min``
    then ``max`` back to back re-reads everything on large columns).
    """
    if flat.size <= _MINMAX_CHUNK:
        return int(flat.min()), int(flat.max())
    lo = None
    hi = None
    for start in range(0, flat.size, _MINMAX_CHUNK):
        chunk = flat[start : start + _MINMAX_CHUNK]
        clo = chunk.min()
        chi = chunk.max()
        if lo is None or clo < lo:
            lo = clo
        if hi is None or chi > hi:
            hi = chi
    return int(lo), int(hi)


def _smallest_int_dtype(array: np.ndarray) -> np.dtype:
    """Pick the narrowest signed integer dtype that can hold *array*."""
    if array.size == 0 or array.dtype == np.int8:
        # int8 is the floor: an empty column (or one already at the floor)
        # needs no value scan at all
        return np.dtype(np.int8)
    lo, hi = _minmax(array.reshape(-1))
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


def serialize_compressed(table: CompressedLineage) -> bytes:
    """Serialize a compressed lineage table to bytes (no general compression)."""
    columns = {}
    payload = bytearray()
    for name in _COLUMNS:
        array = getattr(table, name)
        dtype = _smallest_int_dtype(array)
        if array.dtype == dtype:
            # already at its narrowest (e.g. a table hydrated from disk):
            # skip the cast — tobytes() below is the only copy made
            cast = np.ascontiguousarray(array)
        else:
            cast = np.ascontiguousarray(array.astype(dtype, copy=False))
        columns[name] = {"dtype": dtype.str, "shape": list(cast.shape)}
        payload.extend(cast.tobytes())
    header = {
        "key_side": table.key_side,
        "out_name": table.out_name,
        "in_name": table.in_name,
        "out_shape": list(table.out_shape),
        "in_shape": list(table.in_shape),
        "out_axes": list(table.out_axes),
        "in_axes": list(table.in_axes),
        "columns": columns,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + bytes(payload)


def read_column_arrays(data) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Decode the header and the raw column views of a serialized table.

    *data* may be any buffer (``bytes``, ``memoryview``, mmap record).  The
    returned arrays are **read-only views into that buffer** at their stored
    dtypes — ``np.frombuffer`` with an offset, no slice copy, no upcast.
    A zero-dimensional (scalar-shaped) column has exactly one element: the
    empty shape's index space is the single empty tuple, so its count is the
    empty product 1, not 0.
    """
    view = memoryview(data)
    if bytes(view[:4]) != _MAGIC:
        raise ValueError("not a ProvRC serialized table")
    (header_len,) = struct.unpack("<I", view[4:8])
    header = json.loads(bytes(view[8 : 8 + header_len]).decode("utf-8"))
    offset = 8 + header_len
    arrays: Dict[str, np.ndarray] = {}
    columns = header["columns"]
    frombuffer = np.frombuffer
    for name in _COLUMNS:
        meta = columns[name]
        dtype = _dtype_of(meta["dtype"])
        shape = meta["shape"]
        count = 1
        for dim in shape:
            count *= dim
        arr = frombuffer(view, dtype=dtype, count=count, offset=offset)
        arrays[name] = arr.reshape(shape)
        offset += count * dtype.itemsize
    return header, arrays


def deserialize_compressed(data) -> CompressedLineage:
    """Inverse of :func:`serialize_compressed`.

    Zero-copy: the table's columns are read-only views into *data* at their
    stored narrow dtypes.  The table keeps the buffer alive through the
    views' ``base`` chain, so passing a segment mmap here pins its pages
    until the table (and every array derived from its columns) is dropped.
    """
    header, arrays = read_column_arrays(data)
    return CompressedLineage._hydrate(
        header["key_side"],
        header["out_name"],
        header["in_name"],
        tuple(header["out_shape"]),
        tuple(header["in_shape"]),
        arrays["key_lo"],
        arrays["key_hi"],
        arrays["val_kind"],
        arrays["val_ref"],
        arrays["val_lo"],
        arrays["val_hi"],
        tuple(header["out_axes"]),
        tuple(header["in_axes"]),
    )


def serialize_compressed_gzip(table: CompressedLineage, level: int = 6) -> bytes:
    """ProvRC-GZip: zlib applied to the ProvRC serialization."""
    return zlib.compress(serialize_compressed(table), level)


def deserialize_compressed_gzip(data) -> CompressedLineage:
    return deserialize_compressed(zlib.decompress(data))


def serialize_table(table: CompressedLineage, gzip: bool = False) -> bytes:
    """Serialize one table in either format (the segment-record payload)."""
    return serialize_compressed_gzip(table) if gzip else serialize_compressed(table)


def deserialize_table(data) -> CompressedLineage:
    """Inverse of :func:`serialize_table`, sniffing the format from the
    magic bytes (zlib payloads never start with the ProvRC magic)."""
    view = memoryview(data)
    if bytes(view[:4]) == _MAGIC:
        return deserialize_compressed(data)
    return deserialize_compressed_gzip(data)


def peek_table_identity(data) -> Tuple[str, str, str]:
    """Decode only ``(key_side, in_name, out_name)`` from a serialized
    table payload (plain or gzip), without touching the column bytes.

    The scrub subsystem uses this to verify that the record a manifest ref
    points at really *is* the table the row claims — a checksum proves the
    payload is intact, not that it belongs to this entry.  Raises
    ``ValueError`` (or ``zlib.error``) when the payload is not a table.
    """
    view = memoryview(data)
    if bytes(view[:4]) != _MAGIC:
        view = memoryview(zlib.decompress(view))
        if bytes(view[:4]) != _MAGIC:
            raise ValueError("not a serialized ProvRC table")
    (header_len,) = struct.unpack("<I", bytes(view[4:8]))
    header = json.loads(bytes(view[8 : 8 + header_len]).decode("utf-8"))
    return header["key_side"], header["in_name"], header["out_name"]


def write_compressed(
    table: CompressedLineage,
    path: Union[str, Path],
    gzip: bool = False,
) -> int:
    """Write a table to disk and return the file size in bytes."""
    data = serialize_compressed_gzip(table) if gzip else serialize_compressed(table)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return len(data)


def read_compressed(path: Union[str, Path], gzip: Optional[bool] = None) -> CompressedLineage:
    """Read a table written by :func:`write_compressed`.

    When *gzip* is ``None`` the format is sniffed from the magic bytes.
    """
    data = Path(path).read_bytes()
    if gzip is None:
        gzip = data[:4] != _MAGIC
    return deserialize_compressed_gzip(data) if gzip else deserialize_compressed(data)
