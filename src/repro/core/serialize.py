"""Serialization of ProvRC tables and the ProvRC-GZip variant.

The on-disk format is a compact self-describing binary: a JSON header
(array names, shapes, axis names, key orientation, column dtypes) followed
by the raw bytes of each columnar array, each downcast to the smallest
integer dtype that can represent its values.  ``ProvRC-GZip`` (the format
DSLog uses by default, Section VII.B) is simply this payload passed through
zlib, mirroring how the paper stacks GZip on top of the main algorithm.

Hydration is **zero-copy**: :func:`deserialize_compressed` accepts any
buffer (``bytes``, ``memoryview``, an mmap'd segment record) and returns
read-only ``np.frombuffer`` views directly into it, at the stored narrow
dtypes — no per-column slice copies and no ``astype(int64)`` upcast.  A
table stored as int8 therefore occupies its on-disk footprint in memory,
and the backing buffer (e.g. the segment mmap) stays alive for exactly as
long as any column view references it.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .compressed import CompressedLineage

__all__ = [
    "serialize_compressed",
    "deserialize_compressed",
    "serialize_compressed_gzip",
    "deserialize_compressed_gzip",
    "serialize_table",
    "deserialize_table",
    "write_compressed",
    "read_compressed",
    "read_column_arrays",
    "frame_header",
    "parse_header",
    "json_frame",
    "parse_json_frame",
    "smallest_int_dtype",
]

_MAGIC = b"PRVC"
_COLUMNS = ("key_lo", "key_hi", "val_kind", "val_ref", "val_lo", "val_hi")


# ----------------------------------------------------------------------
# shared magic/struct framing
# ----------------------------------------------------------------------
# Every binary format in the repo opens the same way: a short ASCII magic
# followed by a little-endian struct of fixed fields — "PRVC"/"BLST" carry
# a u32 JSON-header length, "DSEG" a u16 wire version, the RPC frame a
# (version, length, opcode, request id) tuple.  These two helpers are that
# one idiom, with uniform truncation/corruption errors, so each format
# stops hand-rolling its own slice-and-unpack.

def frame_header(magic: bytes, layout: str, *fields) -> bytes:
    """Pack *magic* + ``struct.pack("<" + layout, *fields)``."""
    return magic + struct.pack("<" + layout, *fields)


def parse_header(data, magic: bytes, layout: str, what: str = "frame") -> Tuple[tuple, int]:
    """Validate *magic* and unpack the fixed header fields behind it.

    *data* is any buffer.  Returns ``(fields, offset)`` where *offset* is
    the first byte past the header.  Raises ``ValueError`` naming *what*
    when the buffer is shorter than the header (truncation) or the magic
    does not match (corruption / wrong format).
    """
    view = memoryview(data)
    size = len(magic) + struct.calcsize("<" + layout)
    if len(view) < size:
        raise ValueError(
            f"truncated {what} header: need {size} bytes, have {len(view)}"
        )
    if bytes(view[: len(magic)]) != magic:
        raise ValueError(
            f"not a {what}: bad magic {bytes(view[:len(magic)])!r} (want {magic!r})"
        )
    return struct.unpack("<" + layout, view[len(magic) : size]), size


def json_frame(magic: bytes, header: dict, payload: bytes = b"") -> bytes:
    """*magic* + u32 header length + compact JSON *header* + *payload* —
    the "PRVC" framing, shared by every JSON-headed format."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return frame_header(magic, "I", len(header_bytes)) + header_bytes + payload


def parse_json_frame(data, magic: bytes, what: str = "frame") -> Tuple[dict, int]:
    """Inverse of :func:`json_frame`: returns ``(header, payload_offset)``.

    Raises ``ValueError`` on a bad magic, a header length that overruns
    the buffer, or JSON that does not decode — every corruption mode maps
    to one exception type the storage/scrub layers already handle.
    """
    view = memoryview(data)
    (header_len,), offset = parse_header(view, magic, "I", what)
    if len(view) < offset + header_len:
        raise ValueError(
            f"truncated {what} header: JSON header claims {header_len} bytes, "
            f"only {len(view) - offset} present"
        )
    try:
        header = json.loads(bytes(view[offset : offset + header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"corrupt {what} header: {error}") from None
    if not isinstance(header, dict):
        raise ValueError(f"corrupt {what} header: not a JSON object")
    return header, offset + header_len

# dtype-string -> np.dtype cache: hydration decodes six columns per table
# and np.dtype('<i1') parsing is a measurable share of a small-table decode
_DTYPE_CACHE: Dict[str, np.dtype] = {}


def _dtype_of(spec: str) -> np.dtype:
    dtype = _DTYPE_CACHE.get(spec)
    if dtype is None:
        dtype = _DTYPE_CACHE[spec] = np.dtype(spec)
    return dtype

# chunk size of the single-pass min/max scan: large enough to amortize the
# numpy call overhead, small enough that each chunk stays in L2 so the max
# reduction re-reads cache-hot bytes instead of making a second memory pass
_MINMAX_CHUNK = 65_536


def _minmax(flat: np.ndarray) -> Tuple[int, int]:
    """Min and max of a flat integer array in one pass over memory.

    Each chunk is reduced for both bounds while its bytes are cache-hot,
    so the array is streamed from memory once instead of twice (``min``
    then ``max`` back to back re-reads everything on large columns).
    """
    if flat.size <= _MINMAX_CHUNK:
        return int(flat.min()), int(flat.max())
    lo = None
    hi = None
    for start in range(0, flat.size, _MINMAX_CHUNK):
        chunk = flat[start : start + _MINMAX_CHUNK]
        clo = chunk.min()
        chi = chunk.max()
        if lo is None or clo < lo:
            lo = clo
        if hi is None or chi > hi:
            hi = chi
    return int(lo), int(hi)


def _smallest_int_dtype(array: np.ndarray) -> np.dtype:
    """Pick the narrowest signed integer dtype that can hold *array*."""
    if array.size == 0 or array.dtype == np.int8:
        # int8 is the floor: an empty column (or one already at the floor)
        # needs no value scan at all
        return np.dtype(np.int8)
    lo, hi = _minmax(array.reshape(-1))
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


# the RPC wire layer narrows result boxes the same way table columns are
# narrowed on disk; one name, one policy
smallest_int_dtype = _smallest_int_dtype


def serialize_compressed(table: CompressedLineage) -> bytes:
    """Serialize a compressed lineage table to bytes (no general compression)."""
    columns = {}
    payload = bytearray()
    for name in _COLUMNS:
        array = getattr(table, name)
        dtype = _smallest_int_dtype(array)
        if array.dtype == dtype:
            # already at its narrowest (e.g. a table hydrated from disk):
            # skip the cast — tobytes() below is the only copy made
            cast = np.ascontiguousarray(array)
        else:
            cast = np.ascontiguousarray(array.astype(dtype, copy=False))
        columns[name] = {"dtype": dtype.str, "shape": list(cast.shape)}
        payload.extend(cast.tobytes())
    header = {
        "key_side": table.key_side,
        "out_name": table.out_name,
        "in_name": table.in_name,
        "out_shape": list(table.out_shape),
        "in_shape": list(table.in_shape),
        "out_axes": list(table.out_axes),
        "in_axes": list(table.in_axes),
        "columns": columns,
    }
    return json_frame(_MAGIC, header, bytes(payload))


def read_column_arrays(data) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Decode the header and the raw column views of a serialized table.

    *data* may be any buffer (``bytes``, ``memoryview``, mmap record).  The
    returned arrays are **read-only views into that buffer** at their stored
    dtypes — ``np.frombuffer`` with an offset, no slice copy, no upcast.
    A zero-dimensional (scalar-shaped) column has exactly one element: the
    empty shape's index space is the single empty tuple, so its count is the
    empty product 1, not 0.
    """
    view = memoryview(data)
    header, offset = parse_json_frame(view, _MAGIC, "ProvRC serialized table")
    arrays: Dict[str, np.ndarray] = {}
    columns = header["columns"]
    frombuffer = np.frombuffer
    for name in _COLUMNS:
        meta = columns[name]
        dtype = _dtype_of(meta["dtype"])
        shape = meta["shape"]
        count = 1
        for dim in shape:
            count *= dim
        arr = frombuffer(view, dtype=dtype, count=count, offset=offset)
        arrays[name] = arr.reshape(shape)
        offset += count * dtype.itemsize
    return header, arrays


def deserialize_compressed(data) -> CompressedLineage:
    """Inverse of :func:`serialize_compressed`.

    Zero-copy: the table's columns are read-only views into *data* at their
    stored narrow dtypes.  The table keeps the buffer alive through the
    views' ``base`` chain, so passing a segment mmap here pins its pages
    until the table (and every array derived from its columns) is dropped.
    """
    header, arrays = read_column_arrays(data)
    return CompressedLineage._hydrate(
        header["key_side"],
        header["out_name"],
        header["in_name"],
        tuple(header["out_shape"]),
        tuple(header["in_shape"]),
        arrays["key_lo"],
        arrays["key_hi"],
        arrays["val_kind"],
        arrays["val_ref"],
        arrays["val_lo"],
        arrays["val_hi"],
        tuple(header["out_axes"]),
        tuple(header["in_axes"]),
    )


def serialize_compressed_gzip(table: CompressedLineage, level: int = 6) -> bytes:
    """ProvRC-GZip: zlib applied to the ProvRC serialization."""
    return zlib.compress(serialize_compressed(table), level)


def deserialize_compressed_gzip(data) -> CompressedLineage:
    return deserialize_compressed(zlib.decompress(data))


def serialize_table(table: CompressedLineage, gzip: bool = False) -> bytes:
    """Serialize one table in either format (the segment-record payload)."""
    return serialize_compressed_gzip(table) if gzip else serialize_compressed(table)


def deserialize_table(data) -> CompressedLineage:
    """Inverse of :func:`serialize_table`, sniffing the format from the
    magic bytes (zlib payloads never start with the ProvRC magic)."""
    view = memoryview(data)
    if bytes(view[:4]) == _MAGIC:
        return deserialize_compressed(data)
    return deserialize_compressed_gzip(data)


def peek_table_identity(data) -> Tuple[str, str, str]:
    """Decode only ``(key_side, in_name, out_name)`` from a serialized
    table payload (plain or gzip), without touching the column bytes.

    The scrub subsystem uses this to verify that the record a manifest ref
    points at really *is* the table the row claims — a checksum proves the
    payload is intact, not that it belongs to this entry.  Raises
    ``ValueError`` (or ``zlib.error``) when the payload is not a table.
    """
    view = memoryview(data)
    if bytes(view[:4]) != _MAGIC:
        view = memoryview(zlib.decompress(view))
    header, _offset = parse_json_frame(view, _MAGIC, "serialized ProvRC table")
    return header["key_side"], header["in_name"], header["out_name"]


def write_compressed(
    table: CompressedLineage,
    path: Union[str, Path],
    gzip: bool = False,
) -> int:
    """Write a table to disk and return the file size in bytes."""
    data = serialize_compressed_gzip(table) if gzip else serialize_compressed(table)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return len(data)


def read_compressed(path: Union[str, Path], gzip: Optional[bool] = None) -> CompressedLineage:
    """Read a table written by :func:`write_compressed`.

    When *gzip* is ``None`` the format is sniffed from the magic bytes.
    """
    data = Path(path).read_bytes()
    if gzip is None:
        gzip = data[:4] != _MAGIC
    return deserialize_compressed_gzip(data) if gzip else deserialize_compressed(data)
