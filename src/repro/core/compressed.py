"""The ProvRC compressed lineage table.

A :class:`CompressedLineage` stores a lineage relation as a small number of
*compressed rows*.  Each compressed row describes a set of contribution
edges in "union of Cartesian products" form (Section IV.B of the paper):

* every **key attribute** (the output axes for a backward table, the input
  axes for a forward table) holds an absolute closed interval;
* every **value attribute** (the other side) holds either an absolute
  interval, or a *relative* (delta) interval that references one key
  attribute.  A relative value ``[dlo, dhi]`` referencing key attribute
  ``k`` means: for each key index ``v`` in that row's ``k`` interval, the
  value attribute covers ``[v + dlo, v + dhi]``.

The relative encoding is the paper's "relative value transformation"
(``delta = a_i - b_j`` following the worked example in Table II and the
``rel_back`` formula); the per-key-index expansion is exactly what makes
the representation lossless and what the in-situ range join exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .intervals import Interval
from .relation import AxisNames, LineageRelation, default_axis_names

__all__ = ["ValueAttr", "CompressedRow", "CompressedLineage", "KIND_ABS", "KIND_REL"]

KIND_ABS = 0
KIND_REL = 1


def _as_int_column(array) -> np.ndarray:
    """Coerce one interval column, preserving any signed-integer dtype.

    Hydrated tables arrive as read-only narrow views into serialized bytes
    (int8/int16/...) and must stay that way — upcasting here would undo the
    zero-copy fast path.  Anything else (Python lists, floats, unsigned)
    falls back to the canonical int64.
    """
    arr = np.asarray(array)
    if arr.dtype.kind != "i":
        arr = arr.astype(np.int64)
    return arr


@dataclass(frozen=True)
class ValueAttr:
    """One value attribute of a compressed row (absolute or relative)."""

    kind: int
    interval: Interval
    ref: int = -1  # index of the referenced key attribute when kind == KIND_REL

    @classmethod
    def absolute(cls, lo: int, hi: int) -> "ValueAttr":
        return cls(KIND_ABS, Interval(lo, hi))

    @classmethod
    def relative(cls, ref: int, lo: int, hi: int) -> "ValueAttr":
        return cls(KIND_REL, Interval(lo, hi), ref)

    @property
    def is_relative(self) -> bool:
        return self.kind == KIND_REL


@dataclass(frozen=True)
class CompressedRow:
    """A single row of a compressed lineage table (a UCP term)."""

    key: Tuple[Interval, ...]
    values: Tuple[ValueAttr, ...]

    def value_interval(self, index: int, key_point: Sequence[int]) -> Interval:
        """Absolute interval of value attribute *index* at a fixed key cell."""
        attr = self.values[index]
        if attr.kind == KIND_ABS:
            return attr.interval
        return attr.interval.shift(int(key_point[attr.ref]))


class CompressedLineage:
    """Columnar container for ProvRC-compressed lineage rows.

    The table is stored as flat numpy arrays so the in-situ query processor
    can operate on whole columns at once and so the on-disk footprint can be
    measured fairly against the columnar baselines.

    Columns are **dtype-polymorphic**: any signed integer dtype is kept
    as-is, so a table hydrated from disk holds read-only int8/int16 views
    straight into the serialized buffer (no ``astype(int64)`` inflation) and
    :meth:`nbytes` charges the actual view footprint.  Kernels consuming the
    columns upcast only where arithmetic could overflow the narrow dtype
    (``rel_back`` additions, delta encodings, ``hi + 1`` contiguity probes).
    """

    def __init__(
        self,
        key_side: str,
        out_name: str,
        in_name: str,
        out_shape: Tuple[int, ...],
        in_shape: Tuple[int, ...],
        key_lo: np.ndarray,
        key_hi: np.ndarray,
        val_kind: np.ndarray,
        val_ref: np.ndarray,
        val_lo: np.ndarray,
        val_hi: np.ndarray,
        out_axes: Optional[AxisNames] = None,
        in_axes: Optional[AxisNames] = None,
    ) -> None:
        if key_side not in ("output", "input"):
            raise ValueError("key_side must be 'output' or 'input'")
        self.key_side = key_side
        self.out_name = out_name
        self.in_name = in_name
        self.out_shape = tuple(int(d) for d in out_shape)
        self.in_shape = tuple(int(d) for d in in_shape)
        self.out_axes = tuple(out_axes) if out_axes else default_axis_names("b", len(self.out_shape))
        self.in_axes = tuple(in_axes) if in_axes else default_axis_names("a", len(self.in_shape))

        self.key_lo = _as_int_column(key_lo)
        self.key_hi = _as_int_column(key_hi)
        self.val_kind = np.asarray(val_kind, dtype=np.int8)
        self.val_ref = np.asarray(val_ref, dtype=np.int16)
        self.val_lo = _as_int_column(val_lo)
        self.val_hi = _as_int_column(val_hi)

        nkey = self.key_ndim
        nval = self.value_ndim
        n = self.key_lo.shape[0] if self.key_lo.size else 0
        for name, arr, width in (
            ("key_lo", self.key_lo, nkey),
            ("key_hi", self.key_hi, nkey),
            ("val_kind", self.val_kind, nval),
            ("val_ref", self.val_ref, nval),
            ("val_lo", self.val_lo, nval),
            ("val_hi", self.val_hi, nval),
        ):
            expect = (n, width)
            if arr.size == 0:
                continue
            if arr.shape != expect:
                raise ValueError(f"{name} has shape {arr.shape}, expected {expect}")

        # The query engine de-relativizes with one flat gather over every
        # relative attribute at once, so an out-of-range reference would read
        # garbage (a negative ref wraps) instead of raising per row — reject
        # malformed tables up front.
        if self.val_kind.size:
            rel_refs = self.val_ref[self.val_kind == KIND_REL]
            if rel_refs.size and ((rel_refs < 0).any() or (rel_refs >= nkey).any()):
                raise ValueError(
                    "relative value attributes must reference a key attribute "
                    f"in [0, {nkey})"
                )

    @classmethod
    def _hydrate(
        cls,
        key_side: str,
        out_name: str,
        in_name: str,
        out_shape: Tuple[int, ...],
        in_shape: Tuple[int, ...],
        key_lo: np.ndarray,
        key_hi: np.ndarray,
        val_kind: np.ndarray,
        val_ref: np.ndarray,
        val_lo: np.ndarray,
        val_hi: np.ndarray,
        out_axes: AxisNames,
        in_axes: AxisNames,
    ) -> "CompressedLineage":
        """Trusted fast-path constructor for serializer-produced columns.

        Hydration runs once per table read and the full ``__init__``
        validation (six coercions, shape cross-checks, the relative-ref
        mask) costs more than the decode itself on small tables.  Columns
        arriving here were validated when the table was first constructed
        and serialized, so only one cheap integrity probe remains: the
        bounds of ``val_ref``, whose out-of-range values would silently
        gather garbage in the θ-join (the serializer always stores ``-1``
        for absolute attributes, so the probe is exact).
        """
        self = cls.__new__(cls)
        self.key_side = key_side
        self.out_name = out_name
        self.in_name = in_name
        self.out_shape = out_shape
        self.in_shape = in_shape
        self.out_axes = out_axes
        self.in_axes = in_axes
        self.key_lo = key_lo
        self.key_hi = key_hi
        self.val_kind = val_kind
        self.val_ref = val_ref
        self.val_lo = val_lo
        self.val_hi = val_hi
        if val_ref.size:
            nkey = len(out_shape if key_side == "output" else in_shape)
            if (
                int(val_ref.min()) < -1
                or int(val_ref.max()) >= nkey
                # a relative attribute with ref -1 would silently gather
                # the last key column (negative fancy index wraps)
                or bool(((val_ref < 0) & (val_kind == KIND_REL)).any())
            ):
                raise ValueError(
                    "hydrated table has value references outside the key "
                    f"arity [0, {nkey}) — corrupt or foreign payload"
                )
        return self

    # ------------------------------------------------------------------
    # shape bookkeeping
    # ------------------------------------------------------------------
    @property
    def key_shape(self) -> Tuple[int, ...]:
        return self.out_shape if self.key_side == "output" else self.in_shape

    @property
    def value_shape(self) -> Tuple[int, ...]:
        return self.in_shape if self.key_side == "output" else self.out_shape

    @property
    def key_axes(self) -> AxisNames:
        return self.out_axes if self.key_side == "output" else self.in_axes

    @property
    def value_axes(self) -> AxisNames:
        return self.in_axes if self.key_side == "output" else self.out_axes

    @property
    def key_ndim(self) -> int:
        return len(self.key_shape)

    @property
    def value_ndim(self) -> int:
        return len(self.value_shape)

    @property
    def key_name(self) -> str:
        return self.out_name if self.key_side == "output" else self.in_name

    @property
    def value_name(self) -> str:
        return self.in_name if self.key_side == "output" else self.out_name

    def __len__(self) -> int:
        if self.key_lo.ndim == 2:
            return int(self.key_lo.shape[0])
        return 0

    @property
    def value_bounds(self) -> np.ndarray:
        """Cached ``value_shape - 1`` vector used by the θ-join's clip step."""
        cached = getattr(self, "_value_bounds", None)
        if cached is None:
            cached = np.asarray(self.value_shape, dtype=np.int64) - 1
            self._value_bounds = cached
        return cached

    @property
    def uniform_value_encoding(self) -> Optional[List[Tuple[int, int]]]:
        """Per-column ``(kind, ref)`` when every row agrees on each value
        column's encoding, else ``None``; computed once and cached.

        Structured lineage (elementwise, broadcasts, row patterns) compresses
        to tables whose columns are uniformly absolute or uniformly relative
        with one referenced key attribute, letting the θ-join de-relativize
        with two column adds instead of a per-(row, attribute) gather.
        """
        cached = getattr(self, "_uniform_value_encoding", False)
        if cached is False:
            if len(self) == 0:
                cached = None
            else:
                encoding: Optional[List[Tuple[int, int]]] = []
                for c in range(self.value_ndim):
                    kinds = self.val_kind[:, c]
                    refs = self.val_ref[:, c]
                    if (kinds == kinds[0]).all() and (refs == refs[0]).all():
                        encoding.append((int(kinds[0]), int(refs[0])))
                    else:
                        encoding = None
                        break
                cached = encoding
            self._uniform_value_encoding = cached
        return cached

    @property
    def shared_ref_mask(self) -> Optional[np.ndarray]:
        """``(rows, key_ndim)`` bool mask marking key attributes referenced
        by two or more relative value attributes of the same row, or ``None``
        when no row shares a reference; computed once and cached.

        A single relative attribute stays exact under interval ``rel_back``
        (the union of ``[v + dlo, v + dhi]`` over a key interval is itself an
        interval), but two attributes referencing the *same* key attribute
        describe a diagonal: the θ-join must expand such key attributes per
        index point instead of taking the Cartesian product of the two
        de-relativized intervals.
        """
        cached = getattr(self, "_shared_ref_mask", False)
        if cached is False:
            if len(self) == 0 or not self.has_relative:
                cached = None
            else:
                counts = np.zeros((len(self), self.key_ndim), dtype=np.int8)
                for column in range(self.value_ndim):
                    rel_rows = np.flatnonzero(self.val_kind[:, column] == KIND_REL)
                    # one contribution per row within a column, so the fancy
                    # indexed increment never hits duplicate positions
                    counts[rel_rows, self.val_ref[rel_rows, column]] += 1
                mask = counts >= 2
                cached = mask if mask.any() else None
            self._shared_ref_mask = cached
        return cached

    @property
    def has_relative(self) -> bool:
        """Whether any value attribute uses the relative (delta) encoding.

        Computed once and cached; the θ-join skips the de-relativization
        gather entirely for absolute-only tables.
        """
        cached = getattr(self, "_has_relative", None)
        if cached is None:
            cached = bool((self.val_kind == KIND_REL).any()) if self.val_kind.size else False
            self._has_relative = cached
        return cached

    # ------------------------------------------------------------------
    # row views
    # ------------------------------------------------------------------
    def row(self, index: int) -> CompressedRow:
        key = tuple(
            Interval(int(self.key_lo[index, j]), int(self.key_hi[index, j]))
            for j in range(self.key_ndim)
        )
        values = []
        for i in range(self.value_ndim):
            kind = int(self.val_kind[index, i])
            interval = Interval(int(self.val_lo[index, i]), int(self.val_hi[index, i]))
            ref = int(self.val_ref[index, i])
            values.append(ValueAttr(kind, interval, ref))
        return CompressedRow(key, tuple(values))

    def rows(self) -> Iterator[CompressedRow]:
        for index in range(len(self)):
            yield self.row(index)

    # ------------------------------------------------------------------
    # decompression (the lossless inverse used by tests)
    # ------------------------------------------------------------------
    def decompress(self) -> LineageRelation:
        """Expand back to the full uncompressed :class:`LineageRelation`."""
        pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        for row in self.rows():
            for key_cell in self._iter_box(row.key):
                value_intervals = [
                    row.value_interval(i, key_cell) for i in range(self.value_ndim)
                ]
                for value_cell in self._iter_box(tuple(value_intervals)):
                    if self.key_side == "output":
                        pairs.append((key_cell, value_cell))
                    else:
                        pairs.append((value_cell, key_cell))
        relation = LineageRelation.from_pairs(
            pairs,
            self.out_shape,
            self.in_shape,
            out_name=self.out_name,
            in_name=self.in_name,
            out_axes=self.out_axes,
            in_axes=self.in_axes,
        )
        return relation.deduplicated()

    @staticmethod
    def _iter_box(intervals: Tuple[Interval, ...]) -> Iterator[Tuple[int, ...]]:
        if not intervals:
            yield ()
            return
        head, tail = intervals[0], intervals[1:]
        for value in head:
            for rest in CompressedLineage._iter_box(tail):
                yield (value,) + rest

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """In-memory footprint of the columnar arrays."""
        return int(
            self.key_lo.nbytes
            + self.key_hi.nbytes
            + self.val_kind.nbytes
            + self.val_ref.nbytes
            + self.val_lo.nbytes
            + self.val_hi.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedLineage({self.in_name}->{self.out_name}, key={self.key_side}, "
            f"rows={len(self)})"
        )
