"""In-situ query processing over ProvRC-compressed lineage (Section V).

Forward and backward ``prov_query`` calls over a path of arrays are chains
of θ-joins executed directly on the compressed tables:

1. **Range join** — the query (itself encoded as a set of index boxes) is
   intersected with each compressed row's key intervals; any overlap joins.
2. **De-relativization** — relative value attributes are converted back to
   absolute intervals using ``rel_back`` (value = key-intersection + delta),
   without ever expanding intervals into individual cells.
3. **Projection + merge** — the result is projected onto the next array's
   axes and adjacent boxes are coalesced with a range-encoding-style merge
   before the next hop (the "DSLog-NoMerge" ablation skips this step).

No decompression of the lineage tables happens at any point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .compressed import KIND_REL, CompressedLineage
from .intervals import Box, Interval

__all__ = ["CellBoxSet", "HopStats", "QueryResult", "theta_join", "execute_path", "merge_boxes"]

Cell = Tuple[int, ...]


# ----------------------------------------------------------------------
# box sets
# ----------------------------------------------------------------------
class CellBoxSet:
    """A set of array cells represented as a union of index boxes.

    This is the compressed query encoding ``Q'`` of the paper: both the
    user's ``query_cells`` argument and every intermediate θ-join result are
    kept in this form so the whole pipeline stays in the compressed domain.
    """

    def __init__(self, array_name: str, shape: Tuple[int, ...], lo: np.ndarray, hi: np.ndarray):
        self.array_name = array_name
        self.shape = tuple(int(d) for d in shape)
        ndim = len(self.shape)
        lo = np.asarray(lo, dtype=np.int64).reshape(-1, ndim) if np.size(lo) else np.empty((0, ndim), np.int64)
        hi = np.asarray(hi, dtype=np.int64).reshape(-1, ndim) if np.size(hi) else np.empty((0, ndim), np.int64)
        if lo.shape != hi.shape:
            raise ValueError("lo and hi must have the same shape")
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------
    @classmethod
    def empty(cls, array_name: str, shape: Sequence[int]) -> "CellBoxSet":
        ndim = len(shape)
        return cls(array_name, tuple(shape), np.empty((0, ndim), np.int64), np.empty((0, ndim), np.int64))

    @classmethod
    def from_cells(cls, array_name: str, shape: Sequence[int], cells: Iterable[Cell]) -> "CellBoxSet":
        cells = [tuple(int(v) for v in cell) for cell in cells]
        if not cells:
            return cls.empty(array_name, shape)
        arr = np.asarray(cells, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        box_set = cls(array_name, tuple(shape), arr.copy(), arr.copy())
        return box_set.merged()

    @classmethod
    def from_boxes(
        cls, array_name: str, shape: Sequence[int], boxes: Iterable[Sequence[Tuple[int, int]]]
    ) -> "CellBoxSet":
        boxes = list(boxes)
        if not boxes:
            return cls.empty(array_name, shape)
        lo = np.asarray([[pair[0] for pair in box] for box in boxes], dtype=np.int64)
        hi = np.asarray([[pair[1] for pair in box] for box in boxes], dtype=np.int64)
        return cls(array_name, tuple(shape), lo, hi)

    @classmethod
    def from_slices(
        cls, array_name: str, shape: Sequence[int], slices: Sequence[slice]
    ) -> "CellBoxSet":
        """Build a single box from per-axis slices (stop is exclusive, numpy-style)."""
        pairs = []
        for dim, sl in zip(shape, slices):
            start = 0 if sl.start is None else int(sl.start)
            stop = int(dim) if sl.stop is None else int(sl.stop)
            pairs.append((start, stop - 1))
        return cls.from_boxes(array_name, shape, [pairs])

    # -- basic protocol ---------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def is_empty(self) -> bool:
        return len(self) == 0

    def boxes(self) -> List[Box]:
        return [
            Box(tuple(Interval(int(l), int(h)) for l, h in zip(self.lo[i], self.hi[i])))
            for i in range(len(self))
        ]

    def to_cells(self) -> Set[Cell]:
        """Expand to the explicit set of cells (use only for small results)."""
        out: Set[Cell] = set()
        for box in self.boxes():
            out.update(box.cells())
        return out

    def to_mask(self) -> np.ndarray:
        """Return a boolean mask over the array shape marking member cells."""
        mask = np.zeros(self.shape, dtype=bool)
        for i in range(len(self)):
            index = tuple(
                slice(int(self.lo[i, d]), int(self.hi[i, d]) + 1) for d in range(self.ndim)
            )
            mask[index] = True
        return mask

    def count_cells(self) -> int:
        """Exact number of distinct cells covered by the boxes."""
        if self.is_empty():
            return 0
        total_cells = int(np.prod(self.shape))
        if total_cells <= 50_000_000:
            return int(self.to_mask().sum())
        return len(self.to_cells())

    def clipped(self) -> "CellBoxSet":
        """Clip boxes to the array bounds, dropping boxes that fall outside."""
        if self.is_empty():
            return self
        bounds = np.asarray(self.shape, dtype=np.int64) - 1
        lo = np.maximum(self.lo, 0)
        hi = np.minimum(self.hi, bounds)
        keep = (lo <= hi).all(axis=1)
        return CellBoxSet(self.array_name, self.shape, lo[keep], hi[keep])

    def merged(self) -> "CellBoxSet":
        """Coalesce duplicate and adjacent boxes (the merge optimization)."""
        if self.is_empty():
            return self
        lo, hi = merge_boxes(self.lo, self.hi)
        return CellBoxSet(self.array_name, self.shape, lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellBoxSet({self.array_name}, boxes={len(self)})"


def merge_boxes(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Coalesce boxes with a range-encoding-style sweep.

    Duplicate boxes are removed, then for each axis in turn boxes that agree
    on every other axis and overlap or touch on that axis are merged.  This
    mirrors the row-reduction DSLog applies between θ-joins.
    """
    if lo.shape[0] == 0:
        return lo, hi
    stacked = np.concatenate([lo, hi], axis=1)
    stacked = np.unique(stacked, axis=0)
    ndim = lo.shape[1]
    lo = stacked[:, :ndim].copy()
    hi = stacked[:, ndim:].copy()

    for axis in range(ndim - 1, -1, -1):
        if lo.shape[0] <= 1:
            break
        sort_cols: List[np.ndarray] = [lo[:, axis]]
        for other in range(ndim - 1, -1, -1):
            if other == axis:
                continue
            sort_cols.append(hi[:, other])
            sort_cols.append(lo[:, other])
        order = np.lexsort(sort_cols)
        lo, hi = lo[order], hi[order]

        same_other = np.ones(lo.shape[0], dtype=bool)
        same_other[0] = False
        for other in range(ndim):
            if other == axis:
                continue
            same_other[1:] &= lo[1:, other] == lo[:-1, other]
            same_other[1:] &= hi[1:, other] == hi[:-1, other]

        # Boxes inside a group (identical on every other axis) are sorted by
        # their start on *axis*; a box joins the running merged interval when
        # it overlaps or touches the running end.  The running end must reset
        # per group, so this reduction is a short sequential sweep.
        keep_rows: List[int] = []
        merged_hi: List[int] = []
        for t in range(lo.shape[0]):
            if t > 0 and same_other[t] and int(lo[t, axis]) <= merged_hi[-1] + 1:
                merged_hi[-1] = max(merged_hi[-1], int(hi[t, axis]))
            else:
                keep_rows.append(t)
                merged_hi.append(int(hi[t, axis]))
        lo = lo[keep_rows].copy()
        hi = hi[keep_rows].copy()
        hi[:, axis] = np.asarray(merged_hi, dtype=np.int64)
    return lo, hi


# ----------------------------------------------------------------------
# θ-join
# ----------------------------------------------------------------------
@dataclass
class HopStats:
    """Per-hop statistics of a path query (used by the benchmark harness)."""

    array_from: str
    array_to: str
    rows_scanned: int
    boxes_in: int
    boxes_out_raw: int
    boxes_out_merged: int
    seconds: float


@dataclass
class QueryResult:
    """Result of a path query: the final cell boxes plus per-hop statistics."""

    cells: CellBoxSet
    hops: List[HopStats] = field(default_factory=list)

    def to_cells(self) -> Set[Cell]:
        return self.cells.to_cells()

    def count_cells(self) -> int:
        return self.cells.count_cells()


def theta_join(
    query: CellBoxSet,
    table: CompressedLineage,
    merge: bool = True,
) -> CellBoxSet:
    """One θ-join of a query box set against a compressed lineage table.

    The table's key side must correspond to the query's array; the result is
    a box set over the table's value-side array.
    """
    if table.key_name != query.array_name:
        raise ValueError(
            f"table is keyed on array {table.key_name!r} but the query targets {query.array_name!r}"
        )
    if table.key_ndim != query.ndim:
        raise ValueError("query dimensionality does not match the table's key arity")

    n_rows = len(table)
    value_ndim = table.value_ndim
    out_lo_parts: List[np.ndarray] = []
    out_hi_parts: List[np.ndarray] = []

    key_lo, key_hi = table.key_lo, table.key_hi
    val_kind, val_ref = table.val_kind, table.val_ref
    val_lo, val_hi = table.val_lo, table.val_hi

    for qi in range(len(query)):
        if n_rows == 0:
            break
        q_lo = query.lo[qi]
        q_hi = query.hi[qi]
        inter_lo = np.maximum(key_lo, q_lo[None, :])
        inter_hi = np.minimum(key_hi, q_hi[None, :])
        matched = (inter_lo <= inter_hi).all(axis=1)
        if not matched.any():
            continue
        inter_lo = inter_lo[matched]
        inter_hi = inter_hi[matched]
        row_kind = val_kind[matched]
        row_ref = val_ref[matched]
        row_vlo = val_lo[matched]
        row_vhi = val_hi[matched]

        res_lo = np.empty_like(row_vlo)
        res_hi = np.empty_like(row_vhi)
        for i in range(value_ndim):
            is_rel = row_kind[:, i] == KIND_REL
            res_lo[:, i] = row_vlo[:, i]
            res_hi[:, i] = row_vhi[:, i]
            if is_rel.any():
                refs = row_ref[is_rel, i]
                rel_rows = np.flatnonzero(is_rel)
                # rel_back: absolute = key intersection + delta, applied per row
                res_lo[rel_rows, i] = inter_lo[rel_rows, refs] + row_vlo[rel_rows, i]
                res_hi[rel_rows, i] = inter_hi[rel_rows, refs] + row_vhi[rel_rows, i]
        out_lo_parts.append(res_lo)
        out_hi_parts.append(res_hi)

    if not out_lo_parts:
        return CellBoxSet.empty(table.value_name, table.value_shape)
    lo = np.concatenate(out_lo_parts, axis=0)
    hi = np.concatenate(out_hi_parts, axis=0)
    result = CellBoxSet(table.value_name, table.value_shape, lo, hi).clipped()
    if merge:
        result = result.merged()
    return result


def execute_path(
    tables: Sequence[CompressedLineage],
    query: CellBoxSet,
    merge: bool = True,
) -> QueryResult:
    """Run a multi-hop path query with a left-to-right plan of θ-joins.

    ``tables[i]`` must be keyed on the array produced by hop ``i - 1`` (or
    the initial query array for ``i = 0``); DSLog's catalog takes care of
    picking the right backward/forward orientation for each hop.
    """
    current = query
    hops: List[HopStats] = []
    for table in tables:
        start = time.perf_counter()
        boxes_in = len(current)
        joined = theta_join(current, table, merge=False)
        raw_boxes = len(joined)
        if merge:
            joined = joined.merged()
        elapsed = time.perf_counter() - start
        hops.append(
            HopStats(
                array_from=table.key_name,
                array_to=table.value_name,
                rows_scanned=len(table),
                boxes_in=boxes_in,
                boxes_out_raw=raw_boxes,
                boxes_out_merged=len(joined),
                seconds=elapsed,
            )
        )
        current = joined
        if current.is_empty():
            break
    return QueryResult(cells=current, hops=hops)
