"""In-situ query processing over ProvRC-compressed lineage (Section V).

Forward and backward ``prov_query`` calls over a path of arrays are chains
of θ-joins executed directly on the compressed tables:

1. **Range join** — the query (itself encoded as a set of index boxes) is
   intersected with each compressed row's key intervals; any overlap joins.
2. **De-relativization** — relative value attributes are converted back to
   absolute intervals using ``rel_back`` (value = key-intersection + delta),
   without ever expanding intervals into individual cells.
3. **Projection + merge** — the result is projected onto the next array's
   axes and adjacent boxes are coalesced with a range-encoding-style merge
   before the next hop (the "DSLog-NoMerge" ablation skips this step).

No decompression of the lineage tables happens at any point.

Every kernel here is vectorized: the θ-join is a blocked Q×N×d interval
intersection (the block size is chosen so scratch arrays never exceed
:data:`THETA_JOIN_BLOCK_BUDGET_BYTES`), the box merge is a segmented scan
(lexsort + group-boundary detection + segmented running maxima), and result
counting uses an exact sweep over a coordinate-compressed disjoint box
decomposition.  The original per-row loop implementations live on in
:mod:`repro.core._reference` as oracles for the equivalence tests.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .compressed import KIND_REL, CompressedLineage
from .intervals import Box, Interval, union_length

__all__ = [
    "CellBoxSet",
    "HopStats",
    "QueryResult",
    "theta_join",
    "theta_join_batch",
    "execute_path",
    "execute_path_batch",
    "merge_boxes",
    "merge_boxes_batch",
    "THETA_JOIN_BLOCK_BUDGET_BYTES",
    "COUNT_GRID_CELL_LIMIT",
]

Cell = Tuple[int, ...]

# Scratch-memory budget for one θ-join block: the two Q_block × N × d
# intersection arrays plus the Q_block × N match mask must stay under this
# many bytes, so a 10k-box query against a 100k-row table never materializes
# the full Q×N×d tensor at once.
THETA_JOIN_BLOCK_BUDGET_BYTES = 64 * 1024 * 1024

# count_cells builds an occupancy grid over the coordinate-compressed box
# corners; above this many grid cells it falls back to slower exact paths.
COUNT_GRID_CELL_LIMIT = 8_000_000


# ----------------------------------------------------------------------
# box sets
# ----------------------------------------------------------------------
class CellBoxSet:
    """A set of array cells represented as a union of index boxes.

    This is the compressed query encoding ``Q'`` of the paper: both the
    user's ``query_cells`` argument and every intermediate θ-join result are
    kept in this form so the whole pipeline stays in the compressed domain.
    """

    def __init__(self, array_name: str, shape: Tuple[int, ...], lo: np.ndarray, hi: np.ndarray):
        self.array_name = array_name
        self.shape = tuple(int(d) for d in shape)
        ndim = len(self.shape)
        lo = np.asarray(lo, dtype=np.int64).reshape(-1, ndim) if np.size(lo) else np.empty((0, ndim), np.int64)
        hi = np.asarray(hi, dtype=np.int64).reshape(-1, ndim) if np.size(hi) else np.empty((0, ndim), np.int64)
        if lo.shape != hi.shape:
            raise ValueError("lo and hi must have the same shape")
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------
    @classmethod
    def _wrap(cls, array_name: str, shape: Tuple[int, ...], lo: np.ndarray, hi: np.ndarray) -> "CellBoxSet":
        """Trusted constructor for kernel-internal ``(n, ndim)`` int64 arrays.

        Skips the coercion and validation of ``__init__`` — the query hot
        path builds many short-lived box sets per hop and the re-validation
        of arrays the kernels just produced dominates small queries.
        """
        out = cls.__new__(cls)
        out.array_name = array_name
        out.shape = shape
        out.lo = lo
        out.hi = hi
        return out

    @classmethod
    def empty(cls, array_name: str, shape: Sequence[int]) -> "CellBoxSet":
        ndim = len(shape)
        return cls._wrap(
            array_name, tuple(int(d) for d in shape), np.empty((0, ndim), np.int64), np.empty((0, ndim), np.int64)
        )

    @classmethod
    def from_cells(cls, array_name: str, shape: Sequence[int], cells: Iterable[Cell]) -> "CellBoxSet":
        if not isinstance(cells, np.ndarray):
            if not isinstance(cells, (list, tuple)):
                cells = list(cells)
            if not cells:
                return cls.empty(array_name, shape)
        arr = np.asarray(cells, dtype=np.int64)
        if arr.size == 0:
            return cls.empty(array_name, shape)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape[1] != len(shape):
            raise ValueError(
                f"cells have {arr.shape[1]} coordinates but the array has {len(shape)} axes"
            )
        # Out-of-bounds cells are dropped rather than surviving silently
        # until clipped(); a point cell is either fully inside or fully out.
        # ravel_multi_index rejects such cells itself, so the common all-in-
        # bounds case pays no separate bounds check.
        shape = tuple(int(d) for d in shape)
        try:
            flat = np.ravel_multi_index(tuple(arr.T), shape)
        except ValueError:
            bounds = np.asarray(shape, dtype=np.int64)
            in_bounds = ((arr >= 0) & (arr < bounds[None, :])).all(axis=1)
            arr = arr[in_bounds]
            if arr.shape[0] == 0:
                return cls.empty(array_name, shape)
            flat = np.ravel_multi_index(tuple(arr.T), shape)

        # Point boxes allow a cheap first merge pass: one sort+dedup over the
        # flat indices, then range-encoding of flat runs that stay inside a
        # row of the last axis.  The flat order is exactly the lexsort order
        # of merge_boxes' last-axis pass, so chaining the remaining per-axis
        # passes yields the identical merged result.
        if flat.size > 1:
            if np.all(flat[1:] > flat[:-1]):
                pass  # already sorted and duplicate-free (common for slices)
            else:
                flat.sort()
                keep = np.ones(flat.size, dtype=bool)
                keep[1:] = flat[1:] != flat[:-1]
                flat = flat[keep]
        new_run = np.ones(flat.size, dtype=bool)
        new_run[1:] = flat[1:] != flat[:-1] + 1
        new_run |= flat % shape[-1] == 0  # runs must not wrap across rows
        firsts = np.flatnonzero(new_run)
        lasts = np.append(firsts[1:] - 1, flat.size - 1)
        lo = np.stack(np.unravel_index(flat[firsts], shape), axis=1).astype(np.int64, copy=False)
        ndim = len(shape)
        boxes = np.concatenate([lo, lo], axis=1)
        boxes[:, -1] += flat[lasts] - flat[firsts]
        span = max(shape) + 2  # cells are in-bounds, so the shape bounds the coords
        for axis in range(ndim - 2, -1, -1):
            if boxes.shape[0] <= 1:
                break
            boxes = _merge_axis_pass(boxes, axis, ndim, span)
        return cls._wrap(array_name, shape, boxes[:, :ndim], boxes[:, ndim:])

    @classmethod
    def from_boxes(
        cls, array_name: str, shape: Sequence[int], boxes: Iterable[Sequence[Tuple[int, int]]]
    ) -> "CellBoxSet":
        boxes = list(boxes)
        if not boxes:
            return cls.empty(array_name, shape)
        lo = np.asarray([[pair[0] for pair in box] for box in boxes], dtype=np.int64)
        hi = np.asarray([[pair[1] for pair in box] for box in boxes], dtype=np.int64)
        return cls(array_name, tuple(shape), lo, hi)

    @classmethod
    def from_slices(
        cls, array_name: str, shape: Sequence[int], slices: Sequence[slice]
    ) -> "CellBoxSet":
        """Build a single box from per-axis slices (stop is exclusive, numpy-style)."""
        pairs = []
        for dim, sl in zip(shape, slices):
            start = 0 if sl.start is None else int(sl.start)
            stop = int(dim) if sl.stop is None else int(sl.stop)
            pairs.append((start, stop - 1))
        return cls.from_boxes(array_name, shape, [pairs])

    # -- basic protocol ---------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def is_empty(self) -> bool:
        return len(self) == 0

    def boxes(self) -> List[Box]:
        return [
            Box(tuple(Interval(int(l), int(h)) for l, h in zip(self.lo[i], self.hi[i])))
            for i in range(len(self))
        ]

    def to_cells(self) -> Set[Cell]:
        """Expand to the explicit set of cells (use only for small results)."""
        out: Set[Cell] = set()
        for box in self.boxes():
            out.update(box.cells())
        return out

    def to_cells_array(self) -> np.ndarray:
        """Explicit cells as a deduplicated ``(n, ndim)`` int64 array in
        lexicographic row order — the vectorized counterpart of
        ``sorted(to_cells())``, used by the serving tier to build cell
        listings without materializing per-cell Python tuples."""
        if self.is_empty():
            return np.empty((0, self.ndim), dtype=np.int64)
        parts = []
        for i in range(len(self)):
            axes = [
                np.arange(int(self.lo[i, d]), int(self.hi[i, d]) + 1)
                for d in range(self.ndim)
            ]
            grid = np.meshgrid(*axes, indexing="ij")
            parts.append(np.stack([g.ravel() for g in grid], axis=1))
        cells = np.concatenate(parts, axis=0).astype(np.int64, copy=False)
        n = len(self)
        if n == 1:
            return cells  # an ij meshgrid ravels in lexicographic order
        if n <= 64 and _boxes_disjoint(self.lo, self.hi):
            # disjoint boxes produce no duplicate cells: sorting suffices
            return cells[np.lexsort(cells.T[::-1])]
        # np.unique sorts rows lexicographically — same order as
        # sorted(set(...)) over the equivalent tuples
        return np.unique(cells, axis=0)

    def to_mask(self) -> np.ndarray:
        """Return a boolean mask over the array shape marking member cells."""
        mask = np.zeros(self.shape, dtype=bool)
        for i in range(len(self)):
            index = tuple(
                slice(int(self.lo[i, d]), int(self.hi[i, d]) + 1) for d in range(self.ndim)
            )
            mask[index] = True
        return mask

    def count_cells(self) -> int:
        """Exact number of distinct cells covered by the boxes.

        Boxes may overlap, so this is a measure-of-union problem.  The boxes
        are first coalesced, then counted with an exact sweep over the
        coordinate-compressed grid spanned by the box corners: every grid
        cell is covered either fully or not at all, so the occupied cells
        form a disjoint box decomposition of the union and the answer is the
        sum of their volumes.  No array-sized mask is ever allocated.

        The result is memoized — the box arrays are never mutated after
        construction, and the serving tier may ask for the count more than
        once per result (payload building, stats, batch manifests).
        """
        count = getattr(self, "_cell_count", None)
        if count is None:
            count = self._count_cells()
            self._cell_count = count
        return count

    def _count_cells(self) -> int:
        if self.is_empty():
            return 0
        lo, hi = self.lo, self.hi
        n = lo.shape[0]
        if 1 < n <= 64 and _boxes_disjoint(lo, hi):
            # small sets: when the boxes are pairwise disjoint the union
            # volume is just the sum of volumes — one O(n²·ndim) broadcast
            # beats the constant cost of the merge + compressed-grid sweep
            return int((hi - lo + 1).prod(axis=1).sum())
        if n > 1:
            lo, hi = merge_boxes(lo, hi)
        if lo.shape[0] == 1:
            return int(np.prod(hi[0] - lo[0] + 1))
        if self.ndim == 1:
            return union_length(lo[:, 0], hi[:, 0])
        count = _count_union_grid(lo, hi)
        if count >= 0:
            return count
        # pathological fallback: grid too large for the sweep's budget
        total_cells = int(np.prod(self.shape))
        if total_cells <= 50_000_000:
            return int(CellBoxSet(self.array_name, self.shape, lo, hi).to_mask().sum())
        return len(self.to_cells())

    def clipped(self) -> "CellBoxSet":
        """Clip boxes to the array bounds, dropping boxes that fall outside."""
        if self.is_empty():
            return self
        bounds = np.asarray(self.shape, dtype=np.int64) - 1
        lo = np.maximum(self.lo, 0)
        hi = np.minimum(self.hi, bounds)
        keep = (lo <= hi).all(axis=1)
        if not keep.all():
            lo, hi = lo[keep], hi[keep]
        return CellBoxSet._wrap(self.array_name, self.shape, lo, hi)

    def merged(self) -> "CellBoxSet":
        """Coalesce duplicate and adjacent boxes (the merge optimization)."""
        if len(self) <= 1:
            return self
        lo, hi = merge_boxes(self.lo, self.hi)
        return CellBoxSet._wrap(self.array_name, self.shape, lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellBoxSet({self.array_name}, boxes={len(self)})"


def _boxes_disjoint(lo: np.ndarray, hi: np.ndarray) -> bool:
    """True when no two boxes overlap (O(n²·ndim) broadcast — callers cap n)."""
    overlap = np.logical_and(
        lo[:, None, :] <= hi[None, :, :], hi[:, None, :] >= lo[None, :, :]
    ).all(axis=2)
    return int(overlap.sum()) == lo.shape[0]  # only the diagonal self-overlaps


def _count_union_grid(lo: np.ndarray, hi: np.ndarray) -> int:
    """Exact union volume of possibly overlapping boxes, or ``-1`` when the
    compressed grid would exceed :data:`COUNT_GRID_CELL_LIMIT` cells.

    Coordinate compression turns the union into a disjoint decomposition:
    the corners ``lo`` and ``hi + 1`` cut each axis into slabs, every box is
    an exact union of grid cells, and a d-dimensional difference array plus
    one cumulative sum per axis yields the per-cell cover counts without any
    per-box Python loop.
    """
    n, ndim = lo.shape
    edges = [np.unique(np.concatenate([lo[:, d], hi[:, d] + 1])) for d in range(ndim)]
    grid_cells = 1
    for e in edges:
        grid_cells *= e.size  # the difference array carries one extra slot per axis
        if grid_cells > COUNT_GRID_CELL_LIMIT:
            return -1

    # +1 per axis so the "exclusive end" corners have a slot to land in
    diff = np.zeros(tuple(e.size for e in edges), dtype=np.int32)
    starts = [np.searchsorted(edges[d], lo[:, d]) for d in range(ndim)]
    stops = [np.searchsorted(edges[d], hi[:, d] + 1) for d in range(ndim)]
    for corner in range(1 << ndim):
        index = []
        sign = 1
        for d in range(ndim):
            if corner >> d & 1:
                index.append(stops[d])
                sign = -sign
            else:
                index.append(starts[d])
        np.add.at(diff, tuple(index), sign)
    for d in range(ndim):
        np.cumsum(diff, axis=d, out=diff)

    covered = diff[tuple(slice(0, -1) for _ in range(ndim))] > 0
    # weighted count: contract one axis at a time against the slab widths
    acc = covered.astype(np.int64)
    for d in range(ndim - 1, -1, -1):
        acc = acc @ np.diff(edges[d])
    return int(acc)


def merge_boxes(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Coalesce boxes with a range-encoding-style segmented sweep.

    Duplicate boxes are removed, then for each axis in turn boxes that agree
    on every other axis and overlap or touch on that axis are merged.  This
    mirrors the row-reduction DSLog applies between θ-joins.  The per-axis
    reduction is a segmented scan: groups (identical on every other axis)
    come out of the lexsort adjacent, a segmented running maximum of the
    interval ends finds where each merged run breaks, and
    ``np.maximum.reduceat`` collapses the runs — no per-box Python loop.

    Unlike the loop oracle, no explicit duplicate-removal pass is needed:
    duplicate boxes agree on every sort key of the first axis pass, land in
    the same run and collapse there, and the final pass's sort keys fully
    determine the output order, so the result is identical either way.
    """
    if lo.shape[0] == 0:
        return lo, hi
    ndim = lo.shape[1]
    if lo.shape[0] == 1:
        return lo, hi
    boxes = np.concatenate([lo, hi], axis=1)
    # one band-separation span serves every pass: merging never widens the
    # value range (merged his are maxima of existing his)
    span = int(boxes.max()) - int(boxes.min()) + 2
    for axis in range(ndim - 1, -1, -1):
        boxes = _merge_axis_pass(boxes, axis, ndim, span)
        if boxes.shape[0] <= 1:
            break
    return boxes[:, :ndim], boxes[:, ndim:]


def _merge_axis_pass(boxes: np.ndarray, axis: int, ndim: int, span: int) -> np.ndarray:
    """One segmented merge pass along *axis* over ``(n, 2 * ndim)`` boxes
    (``lo`` columns first, then ``hi``).

    Boxes that agree on every other axis form a group; within a group the
    lexsort orders boxes by their start on *axis*, and a run of boxes whose
    intervals overlap or touch collapses to one row.  The segmented running
    maximum that detects run breaks offsets each group into its own value
    band so a single global ``np.maximum.accumulate`` respects group resets.
    """
    n = boxes.shape[0]
    sort_cols: List[np.ndarray] = [boxes[:, axis]]
    for other in range(ndim - 1, -1, -1):
        if other == axis:
            continue
        sort_cols.append(boxes[:, ndim + other])
        sort_cols.append(boxes[:, other])
    order = np.lexsort(sort_cols)
    boxes = boxes[order]

    others = boxes[:, [c for c in range(2 * ndim) if c != axis and c != ndim + axis]]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.any(others[1:] != others[:-1], axis=1, out=new_group[1:])

    axis_lo = boxes[:, axis]
    axis_hi = boxes[:, ndim + axis]
    # the shift only has to separate the bands, not normalize to zero, so
    # the raw values are offset as-is (int64 headroom is ample)
    band = np.cumsum(new_group)
    np.multiply(band, span, out=band)
    run_hi = axis_hi + band
    np.maximum.accumulate(run_hi, out=run_hi)
    # a new run starts at a group boundary or where the interval begins
    # beyond the group's covered prefix (gap of at least one); across bands
    # the comparison is always true, so no masking is needed
    run_start = new_group
    run_start[1:] |= (axis_lo[1:] + band[1:]) > run_hi[:-1] + 1
    run_firsts = np.flatnonzero(run_start)
    if run_firsts.size == n:
        return boxes  # nothing merged on this axis (rows stay sorted)
    merged = boxes[run_firsts]
    merged[:, ndim + axis] = np.maximum.reduceat(axis_hi, run_firsts)
    return merged


def merge_boxes_batch(
    lo: np.ndarray, hi: np.ndarray, qid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-query :func:`merge_boxes` over a stacked batch of box sets.

    ``qid`` assigns each box to its query; the output is ``(lo, hi, qid)``
    with every query's segment merged **exactly** as :func:`merge_boxes`
    would merge it alone, queries contiguous in ascending ``qid`` order.

    The trick is one extra leading point axis: each box is augmented to
    ``(qid, *coords)`` with the query id as a degenerate ``[qid, qid]``
    interval, and the normal per-axis passes run over the *real* axes only.
    The qid column rides along as the most significant sort key and as part
    of every pass's group identity, so runs never span queries, the
    within-query sort order is identical to the unaugmented pass, and no
    per-query Python loop ever runs.  (The qid axis itself gets no merge
    pass — boxes identical on every real axis within one query are plain
    duplicates, which the first real-axis pass already collapses.)
    """
    n, ndim = lo.shape
    if n == 0:
        return lo, hi, qid
    qid = np.asarray(qid, dtype=np.int64)
    if n == 1:
        return lo, hi, qid
    aug_ndim = ndim + 1
    boxes = np.empty((n, 2 * aug_ndim), dtype=np.int64)
    boxes[:, 0] = qid
    boxes[:, aug_ndim] = qid
    boxes[:, 1:aug_ndim] = lo
    boxes[:, aug_ndim + 1 :] = hi
    span = int(boxes.max()) - int(boxes.min()) + 2
    for axis in range(aug_ndim - 1, 0, -1):  # real axes only; axis 0 is qid
        boxes = _merge_axis_pass(boxes, axis, aug_ndim, span)
        if boxes.shape[0] <= 1:
            break
    # a single surviving row skipped the remaining passes, which would have
    # left it sorted anyway; queries come out contiguous either way
    return boxes[:, 1:aug_ndim], boxes[:, aug_ndim + 1 :], boxes[:, 0]


# ----------------------------------------------------------------------
# θ-join
# ----------------------------------------------------------------------
@dataclass
class HopStats:
    """Per-hop statistics of a path query (used by the benchmark harness)."""

    array_from: str
    array_to: str
    rows_scanned: int
    boxes_in: int
    boxes_out_raw: int
    boxes_out_merged: int
    seconds: float
    join_blocks: int = 0  # number of Q-blocks the blocked θ-join processed


@dataclass
class QueryResult:
    """Result of a path query: the final cell boxes plus per-hop statistics."""

    cells: CellBoxSet
    hops: List[HopStats] = field(default_factory=list)

    def to_cells(self) -> Set[Cell]:
        return self.cells.to_cells()

    def to_cells_array(self) -> np.ndarray:
        return self.cells.to_cells_array()

    @classmethod
    def union(cls, results: Sequence["QueryResult"], merge: bool = True) -> "QueryResult":
        """Combine per-path results into one (multi-path union queries).

        All results must target the same array; the box sets are
        concatenated (and coalesced when *merge* is set) and the per-hop
        statistics of every contributing path are kept in order.
        """
        if not results:
            raise ValueError("cannot union an empty list of query results")
        if len(results) == 1:
            return results[0]
        first = results[0].cells
        for other in results[1:]:
            if other.cells.array_name != first.array_name or other.cells.shape != first.shape:
                raise ValueError(
                    "cannot union results over different arrays: "
                    f"{first.array_name!r} vs {other.cells.array_name!r}"
                )
        lo = np.concatenate([r.cells.lo for r in results], axis=0)
        hi = np.concatenate([r.cells.hi for r in results], axis=0)
        cells = CellBoxSet._wrap(first.array_name, first.shape, lo, hi)
        if merge:
            cells = cells.merged()
        return cls(cells=cells, hops=[hop for r in results for hop in r.hops])

    def count_cells(self) -> int:
        return self.cells.count_cells()


def _partition_shared_refs(
    table: CompressedLineage,
    row_idx: np.ndarray,
    inter_lo: np.ndarray,
    inter_hi: np.ndarray,
):
    """Split matched (query box, row) pairs into interval-exact pairs and
    pairs that need per-key-point expansion.

    A pair needs expansion when the row has a key attribute referenced by
    two or more relative value attributes (see
    :attr:`CompressedLineage.shared_ref_mask`) *and* the key intersection on
    such an attribute spans more than one index — a single index point is
    exact either way.  Returns ``(row_idx, inter_lo, inter_hi, split)`` where
    ``split`` is ``None`` or the ``(row_idx, inter_lo, inter_hi)`` triple of
    the deferred pairs.
    """
    mask = table.shared_ref_mask
    if mask is None or row_idx.size == 0:
        return row_idx, inter_lo, inter_hi, None
    needs = (mask[row_idx] & (inter_hi > inter_lo)).any(axis=1)
    if not needs.any():
        return row_idx, inter_lo, inter_hi, None
    keep = ~needs
    split = (row_idx[needs], inter_lo[needs], inter_hi[needs])
    return row_idx[keep], inter_lo[keep], inter_hi[keep], split


def _expand_shared_refs(
    table: CompressedLineage,
    row_idx: np.ndarray,
    inter_lo: np.ndarray,
    inter_hi: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``rel_back`` for pairs whose row shares a key reference.

    Every shared key attribute is pinned to one index point at a time (the
    Cartesian product over the shared attributes' intersection ranges) and
    the row's value attributes are de-relativized against the pinned key —
    the per-key-index expansion that keeps diagonal lineage exact.  Such
    rows are rare, so this is a plain loop over the deferred pairs.
    """
    mask = table.shared_ref_mask
    value_ndim = table.value_ndim
    los: List[np.ndarray] = []
    his: List[np.ndarray] = []
    for p in range(row_idx.size):
        r = int(row_idx[p])
        shared = np.flatnonzero(mask[r])
        rel_cols = np.flatnonzero(table.val_kind[r] == KIND_REL)
        refs = table.val_ref[r]
        ranges = [range(int(inter_lo[p, k]), int(inter_hi[p, k]) + 1) for k in shared]
        for combo in itertools.product(*ranges):
            key_lo = inter_lo[p].copy()
            key_hi = inter_hi[p].copy()
            key_lo[shared] = combo
            key_hi[shared] = combo
            # upcast: the key additions below can overflow a narrow column
            lo = table.val_lo[r].astype(np.int64)
            hi = table.val_hi[r].astype(np.int64)
            lo[rel_cols] += key_lo[refs[rel_cols]]
            hi[rel_cols] += key_hi[refs[rel_cols]]
            los.append(lo)
            his.append(hi)
    if not los:
        return np.empty((0, value_ndim), np.int64), np.empty((0, value_ndim), np.int64)
    return np.stack(los), np.stack(his)


def _rel_back(
    table: CompressedLineage,
    row_idx: np.ndarray,
    inter_lo: np.ndarray,
    inter_hi: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """De-relativize the matched rows' value intervals (``rel_back``).

    ``inter_lo``/``inter_hi`` are the key intersections of the matched rows;
    relative value attributes become absolute with one flat fancy-indexed
    gather over every (row, attribute) pair at once.

    The stored value columns may be narrow (int8/int16 views hydrated
    straight from disk); the matched gather is upcast to int64 here — the
    one arithmetic-overflow boundary of the join, where int64 key
    intersections are added and the caller clips in place — so only the
    matched pairs pay for wide integers, never the resident table.
    """
    # fancy indexing copies, so the in-place de-relativization is safe
    res_lo = table.val_lo[row_idx]
    res_hi = table.val_hi[row_idx]
    if res_lo.dtype != np.int64:
        res_lo = res_lo.astype(np.int64)
        res_hi = res_hi.astype(np.int64)
    if not table.has_relative:
        return res_lo, res_hi
    encoding = table.uniform_value_encoding
    if encoding is not None:
        # uniformly-encoded columns (the common structured-lineage case):
        # rel_back is two column adds per relative attribute
        for column, (kind, ref) in enumerate(encoding):
            if kind == KIND_REL:
                res_lo[:, column] += inter_lo[:, ref]
                res_hi[:, column] += inter_hi[:, ref]
        return res_lo, res_hi
    rel_r, rel_c = np.nonzero(table.val_kind[row_idx] == KIND_REL)
    if rel_r.size:
        refs = table.val_ref[row_idx[rel_r], rel_c]
        # rel_back: absolute = key intersection + delta, one flat gather
        res_lo[rel_r, rel_c] += inter_lo[rel_r, refs]
        res_hi[rel_r, rel_c] += inter_hi[rel_r, refs]
    return res_lo, res_hi


def theta_join(
    query: CellBoxSet,
    table: CompressedLineage,
    merge: bool = True,
    stats: Optional[Dict[str, int]] = None,
) -> CellBoxSet:
    """One θ-join of a query box set against a compressed lineage table.

    The table's key side must correspond to the query's array; the result is
    a box set over the table's value-side array.

    The join is a single blocked interval-intersection over all Q×N
    (query box, compressed row) pairs: each block broadcasts a slice of the
    query against the whole table, keeps the overlapping pairs, and applies
    ``rel_back`` de-relativization with one flat fancy-indexed gather over
    every relative value attribute at once.  The block size is derived from
    :data:`THETA_JOIN_BLOCK_BUDGET_BYTES` so scratch memory stays bounded
    regardless of query and table sizes.  When *stats* is given, the number
    of processed blocks is recorded under ``"join_blocks"``.

    Narrow (int8/int16) table columns are consumed as-is: the interval
    intersections promote against the int64 query boxes, and only the
    matched value gathers are upcast (inside :func:`_rel_back`), so a
    hydrated table is scanned at its on-disk width.  Query box sets are
    int64 throughout — results are bit-identical to the int64 oracle.
    """
    if table.key_name != query.array_name:
        raise ValueError(
            f"table is keyed on array {table.key_name!r} but the query targets {query.array_name!r}"
        )
    if table.key_ndim != query.ndim:
        raise ValueError("query dimensionality does not match the table's key arity")

    n_rows = len(table)
    n_query = len(query)
    if stats is not None:
        stats["join_blocks"] = 0
    if n_rows == 0 or n_query == 0:
        return CellBoxSet.empty(table.value_name, table.value_shape)

    key_ndim = table.key_ndim
    # scratch per query box: two (n_rows, key_ndim) int64 intersection rows
    # plus the n_rows boolean match column
    bytes_per_query_box = n_rows * (2 * key_ndim * 8 + 1)
    block = max(1, THETA_JOIN_BLOCK_BUDGET_BYTES // max(bytes_per_query_box, 1))

    if n_query == 1:
        # the one-box case (typical after a hop merge) stays 2-D end to end
        if stats is not None:
            stats["join_blocks"] = 1
        inter_lo = np.maximum(table.key_lo, query.lo[0])
        inter_hi = np.minimum(table.key_hi, query.hi[0])
        matched = (inter_lo <= inter_hi).all(axis=1)
        row_idx = np.flatnonzero(matched)
        row_idx, ilo, ihi, split = _partition_shared_refs(
            table, row_idx, inter_lo[row_idx], inter_hi[row_idx]
        )
        lo, hi = _rel_back(table, row_idx, ilo, ihi)
        if split is not None:
            split_lo, split_hi = _expand_shared_refs(table, *split)
            lo = np.concatenate([lo, split_lo], axis=0)
            hi = np.concatenate([hi, split_hi], axis=0)
    else:
        key_lo = table.key_lo[None, :, :]
        key_hi = table.key_hi[None, :, :]
        out_lo_parts: List[np.ndarray] = []
        out_hi_parts: List[np.ndarray] = []
        split_parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for start in range(0, n_query, block):
            stop = min(start + block, n_query)
            if stats is not None:
                stats["join_blocks"] += 1
            inter_lo = np.maximum(key_lo, query.lo[start:stop, None, :])
            inter_hi = np.minimum(key_hi, query.hi[start:stop, None, :])
            matched = (inter_lo <= inter_hi).all(axis=2)
            q_idx, row_idx = np.nonzero(matched)
            row_idx, ilo, ihi, split = _partition_shared_refs(
                table, row_idx, inter_lo[q_idx, row_idx], inter_hi[q_idx, row_idx]
            )
            res_lo, res_hi = _rel_back(table, row_idx, ilo, ihi)
            out_lo_parts.append(res_lo)
            out_hi_parts.append(res_hi)
            if split is not None:
                split_parts.append(split)
        # shared-reference pairs expand per key point after every exact
        # block, so the output ordering does not depend on the block size
        for split in split_parts:
            split_lo, split_hi = _expand_shared_refs(table, *split)
            out_lo_parts.append(split_lo)
            out_hi_parts.append(split_hi)
        if len(out_lo_parts) == 1:
            lo, hi = out_lo_parts[0], out_hi_parts[0]
        else:
            lo = np.concatenate(out_lo_parts, axis=0)
            hi = np.concatenate(out_hi_parts, axis=0)

    # clip to the value array's bounds in place (the arrays are fresh
    # per-block copies), dropping boxes that fall outside entirely
    np.maximum(lo, 0, out=lo)
    np.minimum(hi, table.value_bounds, out=hi)
    keep = (lo <= hi).all(axis=1)
    if not keep.all():
        lo, hi = lo[keep], hi[keep]
    result = CellBoxSet._wrap(table.value_name, table.value_shape, lo, hi)
    if merge:
        result = result.merged()
    return result


def execute_path(
    tables: Sequence[CompressedLineage],
    query: CellBoxSet,
    merge: bool = True,
) -> QueryResult:
    """Run a multi-hop path query with a left-to-right plan of θ-joins.

    ``tables[i]`` must be keyed on the array produced by hop ``i - 1`` (or
    the initial query array for ``i = 0``); DSLog's catalog takes care of
    picking the right backward/forward orientation for each hop.
    """
    current = query
    hops: List[HopStats] = []
    join_stats: Dict[str, int] = {}
    for table in tables:
        start = time.perf_counter()
        boxes_in = len(current)
        joined = theta_join(current, table, merge=False, stats=join_stats)
        raw_boxes = len(joined)
        if merge:
            joined = joined.merged()
        elapsed = time.perf_counter() - start
        hops.append(
            HopStats(
                array_from=table.key_name,
                array_to=table.value_name,
                rows_scanned=len(table),
                boxes_in=boxes_in,
                boxes_out_raw=raw_boxes,
                boxes_out_merged=len(joined),
                seconds=elapsed,
                join_blocks=join_stats.get("join_blocks", 0),
            )
        )
        current = joined
        if current.is_empty():
            break
    return QueryResult(cells=current, hops=hops)


# ----------------------------------------------------------------------
# batched execution: many queries, one kernel pass
# ----------------------------------------------------------------------
def _stack_box_sets(
    queries: Sequence[CellBoxSet],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack a batch of box sets over one array into ``(lo, hi, qid)``.

    Queries are stacked in order, so a stable sort on ``qid`` downstream
    reproduces each query's own box order — the invariant the bit-identity
    of the batched kernels rests on.
    """
    first = queries[0]
    for other in queries[1:]:
        if other.array_name != first.array_name or other.shape != first.shape:
            raise ValueError(
                "all queries in a batch must target the same array: "
                f"{first.array_name!r} vs {other.array_name!r}"
            )
    ndim = first.ndim
    counts = [len(q) for q in queries]
    total = sum(counts)
    if total == 0:
        empty = np.empty((0, ndim), np.int64)
        return empty, empty.copy(), np.empty(0, np.int64)
    lo = np.concatenate([q.lo for q in queries], axis=0)
    hi = np.concatenate([q.hi for q in queries], axis=0)
    qid = np.repeat(np.arange(len(queries), dtype=np.int64), counts)
    return lo, hi, qid


def _theta_join_batch_raw(
    table: CompressedLineage,
    lo: np.ndarray,
    hi: np.ndarray,
    qid: np.ndarray,
    stats: Optional[Dict[str, int]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One blocked θ-join pass over a whole *batch* of stacked query boxes.

    Identical to the multi-box branch of :func:`theta_join` except that
    every matched (box, row) pair carries its box's query id through the
    join, so the output ``(lo, hi, qid)`` segments back into per-query
    results afterwards.  The output is clipped to the value array's bounds
    but **not** merged (merging is per-query, via
    :func:`merge_boxes_batch`); within each query the raw row order is
    exactly what the single-query join would produce.
    """
    n_rows = len(table)
    n_boxes = lo.shape[0]
    if stats is not None:
        stats["join_blocks"] = 0
    value_ndim = table.value_ndim
    if n_rows == 0 or n_boxes == 0:
        empty = np.empty((0, value_ndim), np.int64)
        return empty, empty.copy(), np.empty(0, np.int64)

    key_ndim = table.key_ndim
    bytes_per_query_box = n_rows * (2 * key_ndim * 8 + 1)
    block = max(1, THETA_JOIN_BLOCK_BUDGET_BYTES // max(bytes_per_query_box, 1))

    key_lo = table.key_lo[None, :, :]
    key_hi = table.key_hi[None, :, :]
    out_lo_parts: List[np.ndarray] = []
    out_hi_parts: List[np.ndarray] = []
    out_qid_parts: List[np.ndarray] = []
    split_parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    shared_mask = table.shared_ref_mask
    for start in range(0, n_boxes, block):
        stop = min(start + block, n_boxes)
        if stats is not None:
            stats["join_blocks"] += 1
        inter_lo = np.maximum(key_lo, lo[start:stop, None, :])
        inter_hi = np.minimum(key_hi, hi[start:stop, None, :])
        matched = (inter_lo <= inter_hi).all(axis=2)
        b_idx, row_idx = np.nonzero(matched)
        pair_qid = qid[start + b_idx]
        ilo = inter_lo[b_idx, row_idx]
        ihi = inter_hi[b_idx, row_idx]
        if shared_mask is not None and row_idx.size:
            needs = (shared_mask[row_idx] & (ihi > ilo)).any(axis=1)
            if needs.any():
                split_parts.append(
                    (row_idx[needs], ilo[needs], ihi[needs], pair_qid[needs])
                )
                keep = ~needs
                row_idx, ilo, ihi, pair_qid = (
                    row_idx[keep],
                    ilo[keep],
                    ihi[keep],
                    pair_qid[keep],
                )
        res_lo, res_hi = _rel_back(table, row_idx, ilo, ihi)
        out_lo_parts.append(res_lo)
        out_hi_parts.append(res_hi)
        out_qid_parts.append(pair_qid)
    # shared-reference pairs expand after every exact block, mirroring the
    # single-query kernel's ordering (exact pairs first, then expansions)
    for row_idx, ilo, ihi, pair_qid in split_parts:
        split_lo, split_hi = _expand_shared_refs(table, row_idx, ilo, ihi)
        # per-pair expansion count = the Cartesian product of the shared
        # attributes' intersection ranges, in the same pair order
        spans = np.where(shared_mask[row_idx], ihi - ilo + 1, 1)
        counts = spans.prod(axis=1)
        out_lo_parts.append(split_lo)
        out_hi_parts.append(split_hi)
        out_qid_parts.append(np.repeat(pair_qid, counts))
    if len(out_lo_parts) == 1:
        res_lo, res_hi, res_qid = out_lo_parts[0], out_hi_parts[0], out_qid_parts[0]
    else:
        res_lo = np.concatenate(out_lo_parts, axis=0)
        res_hi = np.concatenate(out_hi_parts, axis=0)
        res_qid = np.concatenate(out_qid_parts, axis=0)

    np.maximum(res_lo, 0, out=res_lo)
    np.minimum(res_hi, table.value_bounds, out=res_hi)
    keep = (res_lo <= res_hi).all(axis=1)
    if not keep.all():
        res_lo, res_hi, res_qid = res_lo[keep], res_hi[keep], res_qid[keep]
    return res_lo, res_hi, res_qid


def _segment_offsets(qid: np.ndarray, n_queries: int) -> np.ndarray:
    """Start offsets of each query's contiguous segment in qid-sorted
    arrays: ``offsets[q] : offsets[q + 1]`` slices query *q*'s rows."""
    counts = np.bincount(qid, minlength=n_queries)
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def theta_join_batch(
    queries: Sequence[CellBoxSet],
    table: CompressedLineage,
    merge: bool = True,
    stats: Optional[Dict[str, int]] = None,
) -> List[CellBoxSet]:
    """θ-join a whole batch of queries against one table in a single
    blocked pass.

    Returns one result box set per query, bit-identical to calling
    :func:`theta_join` on each query alone, but the Q×N×d interval
    intersection runs once over the stacked batch: Q here is the *total*
    box count of the batch, so 64 single-box queries cost one 64×N×d pass
    instead of 64 separate 1×N×d passes (plus 64 rounds of numpy call
    overhead).  Per-query segmentation is an offsets array over the
    qid-sorted output — no Python-level loop touches the box data.
    """
    queries = list(queries)
    if not queries:
        return []
    for query in queries:
        if table.key_name != query.array_name:
            raise ValueError(
                f"table is keyed on array {table.key_name!r} but the query "
                f"targets {query.array_name!r}"
            )
        if table.key_ndim != query.ndim:
            raise ValueError("query dimensionality does not match the table's key arity")
    lo, hi, qid = _stack_box_sets(queries)
    out_lo, out_hi, out_qid = _theta_join_batch_raw(table, lo, hi, qid, stats=stats)
    if merge:
        out_lo, out_hi, out_qid = merge_boxes_batch(out_lo, out_hi, out_qid)
    else:
        order = np.argsort(out_qid, kind="stable")
        out_lo, out_hi, out_qid = out_lo[order], out_hi[order], out_qid[order]
    offsets = _segment_offsets(out_qid, len(queries))
    return [
        CellBoxSet._wrap(
            table.value_name,
            table.value_shape,
            out_lo[offsets[q] : offsets[q + 1]],
            out_hi[offsets[q] : offsets[q + 1]],
        )
        for q in range(len(queries))
    ]


def execute_path_batch(
    tables: Sequence[CompressedLineage],
    queries: Sequence[CellBoxSet],
    merge: bool = True,
) -> List[QueryResult]:
    """Run a batch of queries down one hop-table chain, one blocked kernel
    pass per hop.

    The semantics (results, per-query hop lists, early exit of a query
    whose intermediate result empties) are exactly ``[execute_path(tables,
    q, merge) for q in queries]`` — the loop oracle in
    :mod:`repro.core._reference` pins this — but the whole batch shares
    each hop's θ-join pass and segmented per-query merge, so the per-query
    cost of planning, numpy dispatch and small-array overhead is amortized
    across the batch.
    """
    queries = list(queries)
    n_queries = len(queries)
    if n_queries == 0:
        return []
    if not tables:
        return [QueryResult(cells=query, hops=[]) for query in queries]
    lo, hi, qid = _stack_box_sets(queries)
    hops: List[List[HopStats]] = [[] for _ in range(n_queries)]
    # `alive[q]` = query q participates in the next hop: a query whose
    # intermediate result empties records the hop that emptied it and then
    # drops out, matching execute_path's early break
    alive = np.ones(n_queries, dtype=bool)
    final: List[Optional[CellBoxSet]] = [None] * n_queries
    join_stats: Dict[str, int] = {}
    for table in tables:
        start = time.perf_counter()
        boxes_in = np.bincount(qid, minlength=n_queries)
        out_lo, out_hi, out_qid = _theta_join_batch_raw(
            table, lo, hi, qid, stats=join_stats
        )
        order = np.argsort(out_qid, kind="stable")
        out_lo, out_hi, out_qid = out_lo[order], out_hi[order], out_qid[order]
        raw_counts = np.bincount(out_qid, minlength=n_queries)
        if merge:
            out_lo, out_hi, out_qid = merge_boxes_batch(out_lo, out_hi, out_qid)
            merged_counts = np.bincount(out_qid, minlength=n_queries)
        else:
            merged_counts = raw_counts
        elapsed = time.perf_counter() - start
        offsets = _segment_offsets(out_qid, n_queries)
        blocks = join_stats.get("join_blocks", 0)
        for q in np.flatnonzero(alive):
            hops[q].append(
                HopStats(
                    array_from=table.key_name,
                    array_to=table.value_name,
                    rows_scanned=len(table),
                    boxes_in=int(boxes_in[q]),
                    boxes_out_raw=int(raw_counts[q]),
                    boxes_out_merged=int(merged_counts[q]),
                    seconds=elapsed,
                    join_blocks=blocks,
                )
            )
            if merged_counts[q] == 0:
                alive[q] = False
                final[q] = CellBoxSet._wrap(
                    table.value_name,
                    table.value_shape,
                    out_lo[offsets[q] : offsets[q + 1]],
                    out_hi[offsets[q] : offsets[q + 1]],
                )
        lo, hi, qid = out_lo, out_hi, out_qid
        if not alive.any():
            break
    offsets = _segment_offsets(qid, n_queries)
    last = tables[-1]
    for q in np.flatnonzero(alive):
        final[q] = CellBoxSet._wrap(
            last.value_name,
            last.value_shape,
            lo[offsets[q] : offsets[q + 1]],
            hi[offsets[q] : offsets[q + 1]],
        )
    return [QueryResult(cells=final[q], hops=hops[q]) for q in range(n_queries)]
