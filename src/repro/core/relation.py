"""The relational model for fine-grained array lineage.

A :class:`LineageRelation` is the uncompressed relation ``R(b1..bl, a1..am)``
from Section III.B of the paper: one row per contribution edge between an
output cell of array ``B`` and an input cell of array ``A``.  Rows are kept
in a dense ``numpy`` integer matrix whose first ``l`` columns are the output
axis indices and whose last ``m`` columns are the input axis indices.

All indices are 0-based (numpy convention); the paper's worked examples are
1-based, which only shifts the values, not the structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["LineageRelation", "AxisNames", "default_axis_names"]

AxisNames = Tuple[str, ...]

Cell = Tuple[int, ...]


def default_axis_names(prefix: str, ndim: int) -> AxisNames:
    """Return canonical axis attribute names, e.g. ``('a1', 'a2')``."""
    return tuple(f"{prefix}{i + 1}" for i in range(ndim))


@dataclass
class LineageRelation:
    """Uncompressed cell-level lineage between one input and one output array.

    Parameters
    ----------
    out_shape, in_shape:
        Shapes of the output array ``B`` and the input array ``A``.
    rows:
        ``(n, l + m)`` integer matrix; columns are ``b1..bl`` then ``a1..am``.
    out_name, in_name:
        Logical array names, used when relations are registered in DSLog.
    """

    out_shape: Tuple[int, ...]
    in_shape: Tuple[int, ...]
    rows: np.ndarray
    out_name: str = "B"
    in_name: str = "A"
    out_axes: AxisNames = field(default=())
    in_axes: AxisNames = field(default=())

    def __post_init__(self) -> None:
        self.out_shape = tuple(int(d) for d in self.out_shape)
        self.in_shape = tuple(int(d) for d in self.in_shape)
        rows = np.asarray(self.rows, dtype=np.int64)
        expected = self.out_ndim + self.in_ndim
        if rows.size == 0:
            rows = rows.reshape(0, expected)
        if rows.ndim != 2 or rows.shape[1] != expected:
            raise ValueError(
                f"rows must have {expected} columns "
                f"({self.out_ndim} output axes + {self.in_ndim} input axes), "
                f"got shape {rows.shape}"
            )
        self.rows = rows
        if not self.out_axes:
            self.out_axes = default_axis_names("b", self.out_ndim)
        if not self.in_axes:
            self.in_axes = default_axis_names("a", self.in_ndim)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Cell, Cell]],
        out_shape: Sequence[int],
        in_shape: Sequence[int],
        **kwargs,
    ) -> "LineageRelation":
        """Build a relation from ``(output_cell, input_cell)`` tuples."""
        pairs = list(pairs)
        l, m = len(out_shape), len(in_shape)
        rows = np.empty((len(pairs), l + m), dtype=np.int64)
        for i, (out_cell, in_cell) in enumerate(pairs):
            rows[i, :l] = out_cell
            rows[i, l:] = in_cell
        return cls(tuple(out_shape), tuple(in_shape), rows, **kwargs)

    @classmethod
    def from_capture(
        cls,
        capture: Callable[[Cell], Iterable[Cell]],
        out_shape: Sequence[int],
        in_shape: Sequence[int],
        **kwargs,
    ) -> "LineageRelation":
        """Build a relation by invoking a capture method per output cell.

        ``capture(out_cell)`` must return the input cells contributing to
        that output cell, mirroring the ``Lineage`` capture object in the
        DSLog API.
        """
        pairs = []
        for out_cell in np.ndindex(*[int(d) for d in out_shape]):
            for in_cell in capture(out_cell):
                pairs.append((out_cell, tuple(int(v) for v in in_cell)))
        return cls.from_pairs(pairs, out_shape, in_shape, **kwargs)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def out_ndim(self) -> int:
        return len(self.out_shape)

    @property
    def in_ndim(self) -> int:
        return len(self.in_shape)

    @property
    def ncols(self) -> int:
        return self.out_ndim + self.in_ndim

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self.out_axes) + tuple(self.in_axes)

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    def __iter__(self) -> Iterator[Tuple[Cell, Cell]]:
        l = self.out_ndim
        for row in self.rows:
            yield tuple(int(v) for v in row[:l]), tuple(int(v) for v in row[l:])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineageRelation):
            return NotImplemented
        return (
            self.out_shape == other.out_shape
            and self.in_shape == other.in_shape
            and self.as_set() == other.as_set()
        )

    # ------------------------------------------------------------------
    # canonical forms
    # ------------------------------------------------------------------
    def as_set(self) -> set:
        """Return the relation as a set of full index tuples (set semantics)."""
        return {tuple(int(v) for v in row) for row in self.rows}

    def deduplicated(self) -> "LineageRelation":
        """Return a copy with duplicate rows removed (set semantics)."""
        if len(self) == 0:
            return self
        rows = np.unique(self.rows, axis=0)
        return self._replace_rows(rows)

    def sorted(self) -> "LineageRelation":
        """Return a copy sorted lexicographically on ``b1..bl, a1..am``."""
        if len(self) == 0:
            return self
        order = np.lexsort(self.rows.T[::-1])
        return self._replace_rows(self.rows[order])

    def _replace_rows(self, rows: np.ndarray) -> "LineageRelation":
        return LineageRelation(
            self.out_shape,
            self.in_shape,
            rows,
            out_name=self.out_name,
            in_name=self.in_name,
            out_axes=self.out_axes,
            in_axes=self.in_axes,
        )

    def validate(self) -> None:
        """Check every index is within the declared array shapes."""
        l = self.out_ndim
        if len(self) == 0:
            return
        out_part = self.rows[:, :l]
        in_part = self.rows[:, l:]
        out_max = np.array(self.out_shape, dtype=np.int64)
        in_max = np.array(self.in_shape, dtype=np.int64)
        if (out_part < 0).any() or (out_part >= out_max).any():
            raise ValueError("output index out of bounds for declared shape")
        if (in_part < 0).any() or (in_part >= in_max).any():
            raise ValueError("input index out of bounds for declared shape")

    # ------------------------------------------------------------------
    # lineage semantics
    # ------------------------------------------------------------------
    def backward(self, out_cells: Iterable[Cell]) -> set:
        """Input cells contributing to any of *out_cells* (brute force)."""
        wanted = {tuple(int(v) for v in c) for c in out_cells}
        l = self.out_ndim
        result = set()
        for row in self.rows:
            if tuple(int(v) for v in row[:l]) in wanted:
                result.add(tuple(int(v) for v in row[l:]))
        return result

    def forward(self, in_cells: Iterable[Cell]) -> set:
        """Output cells influenced by any of *in_cells* (brute force)."""
        wanted = {tuple(int(v) for v in c) for c in in_cells}
        l = self.out_ndim
        result = set()
        for row in self.rows:
            if tuple(int(v) for v in row[l:]) in wanted:
                result.add(tuple(int(v) for v in row[:l]))
        return result

    def inverted(self) -> "LineageRelation":
        """Return the relation with input and output roles swapped."""
        l = self.out_ndim
        rows = np.concatenate([self.rows[:, l:], self.rows[:, :l]], axis=1)
        return LineageRelation(
            self.in_shape,
            self.out_shape,
            rows,
            out_name=self.in_name,
            in_name=self.out_name,
            out_axes=self.in_axes,
            in_axes=self.out_axes,
        )

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def nbytes_raw(self) -> int:
        """Size of the uncompressed row matrix in bytes (8 bytes/index)."""
        return int(self.rows.size * self.rows.itemsize)

    def to_csv_bytes(self) -> bytes:
        """Serialize as a CSV (used for the raw-CSV baseline in Table IX)."""
        header = ",".join(self.attribute_names)
        lines = [header]
        for row in self.rows:
            lines.append(",".join(str(int(v)) for v in row))
        return ("\n".join(lines) + "\n").encode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LineageRelation({self.in_name}->{self.out_name}, "
            f"rows={len(self)}, out_shape={self.out_shape}, in_shape={self.in_shape})"
        )
