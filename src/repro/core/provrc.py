"""ProvRC: the lineage compression algorithm (Section IV of the paper).

The algorithm has two passes over the sorted lineage relation:

1. **Multi-attribute range encoding over the value attributes** (the input
   axes of a backward table).  Rows that agree on every other attribute and
   are contiguous on one value attribute are collapsed into a single row
   whose value attribute becomes a closed interval.

2. **Relative value transformation + range encoding over the key
   attributes** (the output axes of a backward table).  For every value
   attribute the algorithm considers two candidate encodings while scanning
   key-contiguous rows: keep the attribute's current (absolute) encoding if
   it is constant across the run, or switch to a *delta* relative to the key
   attribute being merged if that delta is constant across the run.  Runs
   where every value attribute has at least one constant candidate are
   collapsed, exactly mirroring the paper's "non-empty subset of
   ``{a_i, a_i b_1, ..., a_i b_l}`` with the same value" condition.

Both passes are implemented with vectorized numpy primitives plus a greedy
run scan whose iteration count is proportional to the number of *output*
rows (tiny for structured lineage), so compression of million-edge
relations stays tractable in pure Python.

The same routine builds both orientations: ``key="output"`` produces the
backward table (predicates push down on output indices) and ``key="input"``
produces the forward table of Section IV.C.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .compressed import KIND_ABS, KIND_REL, CompressedLineage
from .relation import LineageRelation

__all__ = ["compress", "compress_both", "ProvRCStats"]


class ProvRCStats:
    """Book-keeping emitted by :func:`compress` (row counts per stage)."""

    def __init__(self) -> None:
        self.input_rows = 0
        self.after_value_pass = 0
        self.after_key_pass = 0

    def as_dict(self) -> dict:
        return {
            "input_rows": self.input_rows,
            "after_value_pass": self.after_value_pass,
            "after_key_pass": self.after_key_pass,
        }


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def compress(
    relation: LineageRelation,
    key: str = "output",
    relative: bool = True,
    stats: Optional[ProvRCStats] = None,
) -> CompressedLineage:
    """Compress a lineage relation with ProvRC.

    Parameters
    ----------
    relation:
        The uncompressed cell-level lineage.
    key:
        ``"output"`` builds the backward table (output attributes absolute),
        ``"input"`` builds the forward table (input attributes absolute).
    relative:
        Disable to skip the relative value transformation (ablation); the
        key pass then only merges runs whose value attributes are constant.
    stats:
        Optional :class:`ProvRCStats` collector.
    """
    if key not in ("output", "input"):
        raise ValueError("key must be 'output' or 'input'")
    if relation.out_ndim == 0 or relation.in_ndim == 0:
        raise ValueError("ProvRC requires arrays with at least one axis; "
                         "reshape scalars to shape (1,) before capture")

    deduped = relation.deduplicated()
    l = deduped.out_ndim
    if key == "output":
        key_cols = deduped.rows[:, :l]
        val_cols = deduped.rows[:, l:]
    else:
        key_cols = deduped.rows[:, l:]
        val_cols = deduped.rows[:, :l]

    if stats is None:
        stats = ProvRCStats()
    stats.input_rows = len(deduped)

    klo, khi, vlo, vhi = _value_range_pass(key_cols, val_cols)
    stats.after_value_pass = klo.shape[0]

    vkind = np.zeros(vlo.shape, dtype=np.int8)
    vref = np.full(vlo.shape, -1, dtype=np.int16)
    klo, khi, vkind, vref, vlo, vhi = _key_range_pass(
        klo, khi, vkind, vref, vlo, vhi, relative=relative
    )
    stats.after_key_pass = klo.shape[0]

    return CompressedLineage(
        key_side=key,
        out_name=relation.out_name,
        in_name=relation.in_name,
        out_shape=relation.out_shape,
        in_shape=relation.in_shape,
        key_lo=klo,
        key_hi=khi,
        val_kind=vkind,
        val_ref=vref,
        val_lo=vlo,
        val_hi=vhi,
        out_axes=relation.out_axes,
        in_axes=relation.in_axes,
    )


def compress_both(relation: LineageRelation, relative: bool = True) -> Tuple[CompressedLineage, CompressedLineage]:
    """Return ``(backward_table, forward_table)`` for a relation."""
    return (
        compress(relation, key="output", relative=relative),
        compress(relation, key="input", relative=relative),
    )


# ----------------------------------------------------------------------
# pass 1: multi-attribute range encoding over value attributes
# ----------------------------------------------------------------------
def _value_range_pass(
    key_cols: np.ndarray, val_cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Range-encode each value attribute, last to first.

    Returns ``(key_lo, key_hi, val_lo, val_hi)`` where key intervals are
    still degenerate (``lo == hi``) and value attributes have become
    closed intervals.
    """
    n = key_cols.shape[0]
    nkey = key_cols.shape[1]
    nval = val_cols.shape[1]
    klo = key_cols.astype(np.int64, copy=True)
    khi = key_cols.astype(np.int64, copy=True)
    vlo = val_cols.astype(np.int64, copy=True)
    vhi = val_cols.astype(np.int64, copy=True)
    if n == 0:
        return klo, khi, vlo, vhi

    for vi in range(nval - 1, -1, -1):
        # Sort so rows agreeing on every other attribute are adjacent and
        # ordered by the attribute being encoded.
        sort_cols: List[np.ndarray] = [vlo[:, vi]]
        for j in range(nval - 1, -1, -1):
            if j == vi:
                continue
            sort_cols.append(vhi[:, j])
            sort_cols.append(vlo[:, j])
        for j in range(nkey - 1, -1, -1):
            sort_cols.append(klo[:, j])
        order = np.lexsort(sort_cols)
        klo, khi, vlo, vhi = klo[order], khi[order], vlo[order], vhi[order]

        same_other = np.ones(klo.shape[0], dtype=bool)
        same_other[0] = False
        for j in range(nkey):
            same_other[1:] &= klo[1:, j] == klo[:-1, j]
        for j in range(nval):
            if j == vi:
                continue
            same_other[1:] &= vlo[1:, j] == vlo[:-1, j]
            same_other[1:] &= vhi[1:, j] == vhi[:-1, j]
        contiguous = np.zeros(klo.shape[0], dtype=bool)
        contiguous[1:] = vlo[1:, vi] == vhi[:-1, vi] + 1

        new_run = ~(same_other & contiguous)
        new_run[0] = True
        firsts = np.flatnonzero(new_run)
        lasts = np.append(firsts[1:] - 1, klo.shape[0] - 1)

        run_hi = vhi[lasts, vi]
        klo, khi = klo[firsts], khi[firsts]
        vlo, vhi = vlo[firsts], vhi[firsts].copy()
        vhi[:, vi] = run_hi

    return klo, khi, vlo, vhi


# ----------------------------------------------------------------------
# pass 2: relative value transformation + key range encoding
# ----------------------------------------------------------------------
def _run_lengths(flags: np.ndarray) -> np.ndarray:
    """For each position ``p`` return how many consecutive ``True`` values
    start at ``p`` (0 if ``flags[p]`` is ``False``)."""
    n = flags.shape[0]
    positions = np.arange(n)
    false_pos = np.flatnonzero(~flags)
    if false_pos.size == 0:
        return n - positions
    idx = np.searchsorted(false_pos, positions, side="left")
    clamped = np.minimum(idx, false_pos.shape[0] - 1)
    next_false = np.where(idx < false_pos.shape[0], false_pos[clamped], n)
    return next_false - positions


def _key_range_pass(
    klo: np.ndarray,
    khi: np.ndarray,
    vkind: np.ndarray,
    vref: np.ndarray,
    vlo: np.ndarray,
    vhi: np.ndarray,
    relative: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Range-encode each key attribute, introducing relative value attributes."""
    nkey = klo.shape[1]
    nval = vlo.shape[1]
    if klo.shape[0] == 0:
        return klo, khi, vkind, vref, vlo, vhi

    for kj in range(nkey - 1, -1, -1):
        n = klo.shape[0]
        # Sort: group rows by the other key attributes, then order by the
        # attribute being merged; value columns break remaining ties so the
        # scan is deterministic.
        sort_cols: List[np.ndarray] = []
        for j in range(nval - 1, -1, -1):
            sort_cols.append(vhi[:, j])
            sort_cols.append(vlo[:, j])
            sort_cols.append(vref[:, j].astype(np.int64))
            sort_cols.append(vkind[:, j].astype(np.int64))
        sort_cols.append(klo[:, kj])
        for j in range(nkey - 1, -1, -1):
            if j == kj:
                continue
            sort_cols.append(khi[:, j])
            sort_cols.append(klo[:, j])
        order = np.lexsort(sort_cols)
        klo, khi = klo[order], khi[order]
        vkind, vref = vkind[order], vref[order]
        vlo, vhi = vlo[order], vhi[order]

        base_ok = np.ones(n, dtype=bool)
        base_ok[0] = False
        for j in range(nkey):
            if j == kj:
                continue
            base_ok[1:] &= klo[1:, j] == klo[:-1, j]
            base_ok[1:] &= khi[1:, j] == khi[:-1, j]
        base_ok[1:] &= klo[1:, kj] == khi[:-1, kj] + 1

        keep_eq = np.zeros((nval, n), dtype=bool)
        delta_eq = np.zeros((nval, n), dtype=bool)
        for i in range(nval):
            keep_eq[i, 1:] = (
                (vkind[1:, i] == vkind[:-1, i])
                & (vref[1:, i] == vref[:-1, i])
                & (vlo[1:, i] == vlo[:-1, i])
                & (vhi[1:, i] == vhi[:-1, i])
            )
            if relative:
                both_abs = (vkind[1:, i] == KIND_ABS) & (vkind[:-1, i] == KIND_ABS)
                dlo_cur = vlo[1:, i] - klo[1:, kj]
                dlo_prev = vlo[:-1, i] - klo[:-1, kj]
                dhi_cur = vhi[1:, i] - klo[1:, kj]
                dhi_prev = vhi[:-1, i] - klo[:-1, kj]
                delta_eq[i, 1:] = both_abs & (dlo_cur == dlo_prev) & (dhi_cur == dhi_prev)

        can_merge = base_ok.copy()
        for i in range(nval):
            can_merge &= keep_eq[i] | delta_eq[i]

        base_run = _run_lengths(base_ok)
        keep_run = [_run_lengths(keep_eq[i]) for i in range(nval)]
        delta_run = [_run_lengths(delta_eq[i]) for i in range(nval)]
        merge_pos = np.flatnonzero(can_merge)

        out_klo, out_khi = [], []
        out_vkind, out_vref, out_vlo, out_vhi = [], [], [], []

        def emit_singletons(start: int, stop: int) -> None:
            """Copy rows ``start..stop-1`` through unchanged."""
            if stop <= start:
                return
            out_klo.append(klo[start:stop])
            out_khi.append(khi[start:stop])
            out_vkind.append(vkind[start:stop])
            out_vref.append(vref[start:stop])
            out_vlo.append(vlo[start:stop])
            out_vhi.append(vhi[start:stop])

        s = 0
        mp_idx = 0
        n_merge = merge_pos.shape[0]
        while s < n:
            while mp_idx < n_merge and merge_pos[mp_idx] <= s:
                mp_idx += 1
            if mp_idx >= n_merge:
                emit_singletons(s, n)
                break
            nxt = int(merge_pos[mp_idx])
            if nxt > s + 1:
                # rows s .. nxt-2 cannot start a merge run
                emit_singletons(s, nxt - 1)
                s = nxt - 1
                continue
            # a merge run starts at s (rows s, s+1, ... may collapse)
            length = int(base_run[s + 1]) if s + 1 < n else 0
            for i in range(nval):
                cand = max(int(keep_run[i][s + 1]), int(delta_run[i][s + 1]))
                length = min(length, cand)
            e = s + length
            merged_klo = klo[s].copy()
            merged_khi = khi[s].copy()
            merged_khi[kj] = khi[e, kj]
            merged_kind = vkind[s].copy()
            merged_ref = vref[s].copy()
            merged_vlo = vlo[s].copy()
            merged_vhi = vhi[s].copy()
            if length > 0:
                for i in range(nval):
                    if int(keep_run[i][s + 1]) >= length:
                        continue  # current encoding is constant across the run
                    # switch to the delta encoding relative to key attribute kj
                    merged_kind[i] = KIND_REL
                    merged_ref[i] = kj
                    merged_vlo[i] = vlo[s, i] - klo[s, kj]
                    merged_vhi[i] = vhi[s, i] - klo[s, kj]
            out_klo.append(merged_klo[None, :])
            out_khi.append(merged_khi[None, :])
            out_vkind.append(merged_kind[None, :])
            out_vref.append(merged_ref[None, :])
            out_vlo.append(merged_vlo[None, :])
            out_vhi.append(merged_vhi[None, :])
            s = e + 1

        klo = np.concatenate(out_klo, axis=0) if out_klo else klo[:0]
        khi = np.concatenate(out_khi, axis=0) if out_khi else khi[:0]
        vkind = np.concatenate(out_vkind, axis=0) if out_vkind else vkind[:0]
        vref = np.concatenate(out_vref, axis=0) if out_vref else vref[:0]
        vlo = np.concatenate(out_vlo, axis=0) if out_vlo else vlo[:0]
        vhi = np.concatenate(out_vhi, axis=0) if out_vhi else vhi[:0]

    return klo, khi, vkind, vref, vlo, vhi
