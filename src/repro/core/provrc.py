"""ProvRC: the lineage compression algorithm (Section IV of the paper).

The algorithm has two passes over the sorted lineage relation:

1. **Multi-attribute range encoding over the value attributes** (the input
   axes of a backward table).  Rows that agree on every other attribute and
   are contiguous on one value attribute are collapsed into a single row
   whose value attribute becomes a closed interval.

2. **Relative value transformation + range encoding over the key
   attributes** (the output axes of a backward table).  For every value
   attribute the algorithm considers two candidate encodings while scanning
   key-contiguous rows: keep the attribute's current (absolute) encoding if
   it is constant across the run, or switch to a *delta* relative to the key
   attribute being merged if that delta is constant across the run.  Runs
   where every value attribute has at least one constant candidate are
   collapsed, exactly mirroring the paper's "non-empty subset of
   ``{a_i, a_i b_1, ..., a_i b_l}`` with the same value" condition.

Both passes are implemented with vectorized numpy primitives end to end.
The greedy run scan of the key pass is resolved with pointer doubling over
precomputed run lengths (``O(log n)`` vectorized rounds instead of one
Python iteration per run), so compression of million-edge relations is
bounded by numpy throughput rather than the interpreter.  The original
sequential scan survives as :func:`repro.core._reference.key_range_pass_reference`
and the equivalence tests assert identical output tables.

The same routine builds both orientations: ``key="output"`` produces the
backward table (predicates push down on output indices) and ``key="input"``
produces the forward table of Section IV.C.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .compressed import KIND_ABS, KIND_REL, CompressedLineage
from .relation import LineageRelation

__all__ = ["compress", "compress_both", "ProvRCStats"]


class ProvRCStats:
    """Book-keeping emitted by :func:`compress` (row counts per stage)."""

    def __init__(self) -> None:
        self.input_rows = 0
        self.after_value_pass = 0
        self.after_key_pass = 0

    def as_dict(self) -> dict:
        return {
            "input_rows": self.input_rows,
            "after_value_pass": self.after_value_pass,
            "after_key_pass": self.after_key_pass,
        }


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def compress(
    relation: LineageRelation,
    key: str = "output",
    relative: bool = True,
    stats: Optional[ProvRCStats] = None,
) -> CompressedLineage:
    """Compress a lineage relation with ProvRC.

    Parameters
    ----------
    relation:
        The uncompressed cell-level lineage.
    key:
        ``"output"`` builds the backward table (output attributes absolute),
        ``"input"`` builds the forward table (input attributes absolute).
    relative:
        Disable to skip the relative value transformation (ablation); the
        key pass then only merges runs whose value attributes are constant.
    stats:
        Optional :class:`ProvRCStats` collector.
    """
    if key not in ("output", "input"):
        raise ValueError("key must be 'output' or 'input'")
    if relation.out_ndim == 0 or relation.in_ndim == 0:
        raise ValueError("ProvRC requires arrays with at least one axis; "
                         "reshape scalars to shape (1,) before capture")

    deduped = relation.deduplicated()
    l = deduped.out_ndim
    if key == "output":
        key_cols = deduped.rows[:, :l]
        val_cols = deduped.rows[:, l:]
    else:
        key_cols = deduped.rows[:, l:]
        val_cols = deduped.rows[:, :l]

    if stats is None:
        stats = ProvRCStats()
    stats.input_rows = len(deduped)

    klo, khi, vlo, vhi = _value_range_pass(key_cols, val_cols)
    stats.after_value_pass = klo.shape[0]

    vkind = np.zeros(vlo.shape, dtype=np.int8)
    vref = np.full(vlo.shape, -1, dtype=np.int16)
    klo, khi, vkind, vref, vlo, vhi = _key_range_pass(
        klo, khi, vkind, vref, vlo, vhi, relative=relative
    )
    stats.after_key_pass = klo.shape[0]

    return CompressedLineage(
        key_side=key,
        out_name=relation.out_name,
        in_name=relation.in_name,
        out_shape=relation.out_shape,
        in_shape=relation.in_shape,
        key_lo=klo,
        key_hi=khi,
        val_kind=vkind,
        val_ref=vref,
        val_lo=vlo,
        val_hi=vhi,
        out_axes=relation.out_axes,
        in_axes=relation.in_axes,
    )


def compress_both(relation: LineageRelation, relative: bool = True) -> Tuple[CompressedLineage, CompressedLineage]:
    """Return ``(backward_table, forward_table)`` for a relation."""
    return (
        compress(relation, key="output", relative=relative),
        compress(relation, key="input", relative=relative),
    )


# ----------------------------------------------------------------------
# pass 1: multi-attribute range encoding over value attributes
# ----------------------------------------------------------------------
def _value_range_pass(
    key_cols: np.ndarray, val_cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Range-encode each value attribute, last to first.

    Returns ``(key_lo, key_hi, val_lo, val_hi)`` where key intervals are
    still degenerate (``lo == hi``) and value attributes have become
    closed intervals.
    """
    n = key_cols.shape[0]
    nkey = key_cols.shape[1]
    nval = val_cols.shape[1]
    # the pass only compares and regroups, so narrow input columns stay at
    # their width; contiguity is probed with an explicitly-int64 subtract
    klo = np.array(key_cols)
    khi = np.array(key_cols)
    vlo = np.array(val_cols)
    vhi = np.array(val_cols)
    if n == 0:
        return klo, khi, vlo, vhi

    for vi in range(nval - 1, -1, -1):
        # Sort so rows agreeing on every other attribute are adjacent and
        # ordered by the attribute being encoded.
        sort_cols: List[np.ndarray] = [vlo[:, vi]]
        for j in range(nval - 1, -1, -1):
            if j == vi:
                continue
            sort_cols.append(vhi[:, j])
            sort_cols.append(vlo[:, j])
        for j in range(nkey - 1, -1, -1):
            sort_cols.append(klo[:, j])
        order = np.lexsort(sort_cols)
        klo, khi, vlo, vhi = klo[order], khi[order], vlo[order], vhi[order]

        same_other = np.ones(klo.shape[0], dtype=bool)
        same_other[0] = False
        for j in range(nkey):
            same_other[1:] &= klo[1:, j] == klo[:-1, j]
        for j in range(nval):
            if j == vi:
                continue
            same_other[1:] &= vlo[1:, j] == vlo[:-1, j]
            same_other[1:] &= vhi[1:, j] == vhi[:-1, j]
        contiguous = np.zeros(klo.shape[0], dtype=bool)
        # int64 subtract: ``hi + 1`` would wrap at a narrow dtype's ceiling
        contiguous[1:] = np.subtract(vlo[1:, vi], vhi[:-1, vi], dtype=np.int64) == 1

        new_run = ~(same_other & contiguous)
        new_run[0] = True
        firsts = np.flatnonzero(new_run)
        lasts = np.append(firsts[1:] - 1, klo.shape[0] - 1)

        run_hi = vhi[lasts, vi]
        klo, khi = klo[firsts], khi[firsts]
        vlo, vhi = vlo[firsts], vhi[firsts].copy()
        vhi[:, vi] = run_hi

    return klo, khi, vlo, vhi


# ----------------------------------------------------------------------
# pass 2: relative value transformation + key range encoding
# ----------------------------------------------------------------------
def _run_lengths(flags: np.ndarray) -> np.ndarray:
    """For each position ``p`` return how many consecutive ``True`` values
    start at ``p`` (0 if ``flags[p]`` is ``False``)."""
    n = flags.shape[0]
    positions = np.arange(n)
    false_pos = np.flatnonzero(~flags)
    if false_pos.size == 0:
        return n - positions
    idx = np.searchsorted(false_pos, positions, side="left")
    clamped = np.minimum(idx, false_pos.shape[0] - 1)
    next_false = np.where(idx < false_pos.shape[0], false_pos[clamped], n)
    return next_false - positions


def _greedy_scan_starts(jump: np.ndarray) -> np.ndarray:
    """Positions visited starting from 0 under ``s -> jump[s]`` (``jump[s] > s``).

    This resolves the greedy run scan without a per-run Python loop: the
    scan's next start position is a function of the current one, so the set
    of visited positions is the orbit of 0, computed here with pointer
    doubling — ``ceil(log2(n + 1))`` rounds of vectorized composition
    instead of one interpreted iteration per emitted row.
    """
    n = jump.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    hop = np.empty(n + 1, dtype=np.int64)
    np.minimum(jump, n, out=hop[:n])
    hop[n] = n  # absorbing sentinel
    visited = np.zeros(n + 1, dtype=bool)
    visited[0] = True
    span = 1
    while span <= n:
        # invariant: visited holds the orbit prefix of < span steps and hop
        # advances by span steps, so each round doubles the covered prefix
        visited[hop[visited]] = True
        hop = hop[hop]
        span *= 2
    return np.flatnonzero(visited[:n])


def _key_range_pass(
    klo: np.ndarray,
    khi: np.ndarray,
    vkind: np.ndarray,
    vref: np.ndarray,
    vlo: np.ndarray,
    vhi: np.ndarray,
    relative: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Range-encode each key attribute, introducing relative value attributes."""
    nkey = klo.shape[1]
    nval = vlo.shape[1]
    if klo.shape[0] == 0:
        return klo, khi, vkind, vref, vlo, vhi
    if relative and vlo.dtype != np.int64:
        # delta encoding stores value - key differences, which can exceed
        # the narrow input dtype's range in either direction: this is the
        # pass's arithmetic-overflow boundary, so the value columns (where
        # deltas land) are upcast here; key columns stay narrow throughout
        vlo = vlo.astype(np.int64)
        vhi = vhi.astype(np.int64)

    for kj in range(nkey - 1, -1, -1):
        n = klo.shape[0]
        # Sort: group rows by the other key attributes, then order by the
        # attribute being merged; value columns break remaining ties so the
        # scan is deterministic.
        sort_cols: List[np.ndarray] = []
        for j in range(nval - 1, -1, -1):
            sort_cols.append(vhi[:, j])
            sort_cols.append(vlo[:, j])
            sort_cols.append(vref[:, j].astype(np.int64))
            sort_cols.append(vkind[:, j].astype(np.int64))
        sort_cols.append(klo[:, kj])
        for j in range(nkey - 1, -1, -1):
            if j == kj:
                continue
            sort_cols.append(khi[:, j])
            sort_cols.append(klo[:, j])
        order = np.lexsort(sort_cols)
        klo, khi = klo[order], khi[order]
        vkind, vref = vkind[order], vref[order]
        vlo, vhi = vlo[order], vhi[order]

        base_ok = np.ones(n, dtype=bool)
        base_ok[0] = False
        for j in range(nkey):
            if j == kj:
                continue
            base_ok[1:] &= klo[1:, j] == klo[:-1, j]
            base_ok[1:] &= khi[1:, j] == khi[:-1, j]
        # int64 subtract: ``hi + 1`` would wrap at a narrow dtype's ceiling
        base_ok[1:] &= np.subtract(klo[1:, kj], khi[:-1, kj], dtype=np.int64) == 1

        keep_eq = np.zeros((nval, n), dtype=bool)
        delta_eq = np.zeros((nval, n), dtype=bool)
        for i in range(nval):
            keep_eq[i, 1:] = (
                (vkind[1:, i] == vkind[:-1, i])
                & (vref[1:, i] == vref[:-1, i])
                & (vlo[1:, i] == vlo[:-1, i])
                & (vhi[1:, i] == vhi[:-1, i])
            )
            if relative:
                both_abs = (vkind[1:, i] == KIND_ABS) & (vkind[:-1, i] == KIND_ABS)
                dlo_cur = vlo[1:, i] - klo[1:, kj]
                dlo_prev = vlo[:-1, i] - klo[:-1, kj]
                dhi_cur = vhi[1:, i] - klo[1:, kj]
                dhi_prev = vhi[:-1, i] - klo[:-1, kj]
                delta_eq[i, 1:] = both_abs & (dlo_cur == dlo_prev) & (dhi_cur == dhi_prev)

        base_run = _run_lengths(base_ok)
        keep_run = [_run_lengths(keep_eq[i]) for i in range(nval)]
        delta_run = [_run_lengths(delta_eq[i]) for i in range(nval)]

        # Maximal collapsible run length starting at each row: bounded by the
        # key-contiguity run and, per value attribute, by the better of the
        # two candidate encodings (keep absolute vs switch to delta).  The
        # length is 0 exactly where no merge can start (can_merge is false at
        # the following row), so the greedy scan reduces to jumping
        # run_length + 1 rows ahead from each emitted row.
        run_length = np.zeros(n, dtype=np.int64)
        if n > 1:
            best = base_run[1:].copy()
            for i in range(nval):
                np.minimum(best, np.maximum(keep_run[i][1:], delta_run[i][1:]), out=best)
            run_length[:-1] = best

        starts = _greedy_scan_starts(np.arange(n, dtype=np.int64) + run_length + 1)
        length = run_length[starts]
        ends = starts + length

        # advanced indexing copies, so the in-place edits below are safe
        new_klo, new_khi = klo[starts], khi[starts]
        new_vkind, new_vref = vkind[starts], vref[starts]
        new_vlo, new_vhi = vlo[starts], vhi[starts]
        new_khi[:, kj] = khi[ends, kj]

        collapsed = length > 0
        if collapsed.any():
            succ = np.minimum(starts + 1, n - 1)  # valid wherever collapsed
            for i in range(nval):
                # keep the current encoding when it is constant across the
                # run; otherwise switch to the delta relative to attribute kj
                switch = collapsed & (keep_run[i][succ] < length)
                if switch.any():
                    rows = starts[switch]
                    new_vkind[switch, i] = KIND_REL
                    new_vref[switch, i] = kj
                    new_vlo[switch, i] = vlo[rows, i] - klo[rows, kj]
                    new_vhi[switch, i] = vhi[rows, i] - klo[rows, kj]

        klo, khi = new_klo, new_khi
        vkind, vref = new_vkind, new_vref
        vlo, vhi = new_vlo, new_vhi

    return klo, khi, vkind, vref, vlo, vhi
