"""Core data structures and algorithms: the paper's primary contribution.

* :mod:`repro.core.intervals` — integer intervals and boxes.
* :mod:`repro.core.relation` — the relational lineage model.
* :mod:`repro.core.provrc` — the ProvRC compression algorithm.
* :mod:`repro.core.compressed` — the compressed table representation.
* :mod:`repro.core.serialize` — on-disk formats (ProvRC / ProvRC-GZip).
* :mod:`repro.core.query` — in-situ θ-join query processing.
* :mod:`repro.core.reference` — brute-force ground-truth queries.
"""

from .compressed import CompressedLineage, CompressedRow, ValueAttr
from .intervals import Box, Interval, merge_adjacent_intervals, ranges_from_integers
from .provrc import ProvRCStats, compress, compress_both
from .query import CellBoxSet, QueryResult, execute_path, theta_join
from .reference import query_path_reference, single_hop_reference
from .relation import LineageRelation
from .serialize import (
    deserialize_compressed,
    deserialize_compressed_gzip,
    read_compressed,
    serialize_compressed,
    serialize_compressed_gzip,
    write_compressed,
)

__all__ = [
    "Box",
    "Interval",
    "ranges_from_integers",
    "merge_adjacent_intervals",
    "LineageRelation",
    "CompressedLineage",
    "CompressedRow",
    "ValueAttr",
    "compress",
    "compress_both",
    "ProvRCStats",
    "CellBoxSet",
    "QueryResult",
    "execute_path",
    "theta_join",
    "query_path_reference",
    "single_hop_reference",
    "serialize_compressed",
    "deserialize_compressed",
    "serialize_compressed_gzip",
    "deserialize_compressed_gzip",
    "write_compressed",
    "read_compressed",
]
