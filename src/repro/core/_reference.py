"""Loop-based oracle implementations of the vectorized query/compression kernels.

These are the original (pre-vectorization) per-row Python implementations of
``theta_join``, ``merge_boxes`` and the ProvRC key-pass greedy run scan.
They are intentionally simple — one interpreted loop iteration per row or
box — and define the exact semantics the vectorized kernels in
:mod:`repro.core.query` and :mod:`repro.core.provrc` must reproduce, down to
output row ordering.  ``tests/core/test_query_equivalence.py`` checks the
kernels against these oracles on randomized relations.

Not to be confused with :mod:`repro.core.reference`, which holds the
set-based brute-force oracles for whole *queries* (ground truth for both the
in-situ processor and the baselines).  This module pins down the *kernels*.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np

from .compressed import KIND_REL, CompressedLineage
from .provrc import _run_lengths

__all__ = [
    "theta_join_reference",
    "merge_boxes_reference",
    "key_range_pass_reference",
    "theta_join_batch_reference",
    "merge_boxes_batch_reference",
    "execute_path_batch_reference",
]


def merge_boxes_reference(lo: np.ndarray, hi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Coalesce boxes with the original per-row sequential sweep."""
    if lo.shape[0] == 0:
        return lo, hi
    stacked = np.concatenate([lo, hi], axis=1)
    stacked = np.unique(stacked, axis=0)
    ndim = lo.shape[1]
    lo = stacked[:, :ndim].copy()
    hi = stacked[:, ndim:].copy()

    for axis in range(ndim - 1, -1, -1):
        if lo.shape[0] <= 1:
            break
        sort_cols: List[np.ndarray] = [lo[:, axis]]
        for other in range(ndim - 1, -1, -1):
            if other == axis:
                continue
            sort_cols.append(hi[:, other])
            sort_cols.append(lo[:, other])
        order = np.lexsort(sort_cols)
        lo, hi = lo[order], hi[order]

        same_other = np.ones(lo.shape[0], dtype=bool)
        same_other[0] = False
        for other in range(ndim):
            if other == axis:
                continue
            same_other[1:] &= lo[1:, other] == lo[:-1, other]
            same_other[1:] &= hi[1:, other] == hi[:-1, other]

        # Boxes inside a group (identical on every other axis) are sorted by
        # their start on *axis*; a box joins the running merged interval when
        # it overlaps or touches the running end.
        keep_rows: List[int] = []
        merged_hi: List[int] = []
        for t in range(lo.shape[0]):
            if t > 0 and same_other[t] and int(lo[t, axis]) <= merged_hi[-1] + 1:
                merged_hi[-1] = max(merged_hi[-1], int(hi[t, axis]))
            else:
                keep_rows.append(t)
                merged_hi.append(int(hi[t, axis]))
        lo = lo[keep_rows].copy()
        hi = hi[keep_rows].copy()
        hi[:, axis] = np.asarray(merged_hi, dtype=np.int64)
    return lo, hi


def theta_join_reference(query, table: CompressedLineage, merge: bool = True):
    """One θ-join done with the original one-broadcast-per-query-box loop."""
    from .query import CellBoxSet

    if table.key_name != query.array_name:
        raise ValueError(
            f"table is keyed on array {table.key_name!r} but the query targets {query.array_name!r}"
        )
    if table.key_ndim != query.ndim:
        raise ValueError("query dimensionality does not match the table's key arity")

    n_rows = len(table)
    value_ndim = table.value_ndim
    out_lo_parts: List[np.ndarray] = []
    out_hi_parts: List[np.ndarray] = []

    key_lo, key_hi = table.key_lo, table.key_hi
    val_kind, val_ref = table.val_kind, table.val_ref
    val_lo, val_hi = table.val_lo, table.val_hi
    shared_mask = table.shared_ref_mask
    # (row, key intersection) pairs whose row has a key attribute referenced
    # by two or more relative value attributes AND a multi-index intersection
    # on it: interval rel_back would turn the diagonal into a full box, so
    # these pairs are expanded per key point after the exact pairs
    deferred: List[Tuple[int, np.ndarray, np.ndarray]] = []

    for qi in range(len(query)):
        if n_rows == 0:
            break
        q_lo = query.lo[qi]
        q_hi = query.hi[qi]
        inter_lo = np.maximum(key_lo, q_lo[None, :])
        inter_hi = np.minimum(key_hi, q_hi[None, :])
        matched = (inter_lo <= inter_hi).all(axis=1)
        if shared_mask is not None and matched.any():
            needs = matched & (shared_mask & (inter_hi > inter_lo)).any(axis=1)
            for r in np.flatnonzero(needs):
                deferred.append((int(r), inter_lo[r].copy(), inter_hi[r].copy()))
            matched &= ~needs
        if not matched.any():
            continue
        inter_lo = inter_lo[matched]
        inter_hi = inter_hi[matched]
        row_kind = val_kind[matched]
        row_ref = val_ref[matched]
        row_vlo = val_lo[matched]
        row_vhi = val_hi[matched]

        # int64 like the vectorized kernel: the rel_back additions below
        # can overflow a narrow stored dtype
        res_lo = row_vlo.astype(np.int64)
        res_hi = row_vhi.astype(np.int64)
        for i in range(value_ndim):
            is_rel = row_kind[:, i] == KIND_REL
            if is_rel.any():
                refs = row_ref[is_rel, i]
                rel_rows = np.flatnonzero(is_rel)
                # rel_back: absolute = key intersection + delta, applied per row
                res_lo[rel_rows, i] = inter_lo[rel_rows, refs] + row_vlo[rel_rows, i]
                res_hi[rel_rows, i] = inter_hi[rel_rows, refs] + row_vhi[rel_rows, i]
        out_lo_parts.append(res_lo)
        out_hi_parts.append(res_hi)

    for r, ilo, ihi in deferred:
        shared = np.flatnonzero(shared_mask[r])
        point_ranges = [range(int(ilo[k]), int(ihi[k]) + 1) for k in shared]
        for combo in itertools.product(*point_ranges):
            klo = ilo.copy()
            khi = ihi.copy()
            klo[shared] = combo
            khi[shared] = combo
            lo = val_lo[r].astype(np.int64)
            hi = val_hi[r].astype(np.int64)
            for i in range(value_ndim):
                if val_kind[r, i] == KIND_REL:
                    lo[i] += klo[val_ref[r, i]]
                    hi[i] += khi[val_ref[r, i]]
            out_lo_parts.append(lo[None, :])
            out_hi_parts.append(hi[None, :])

    if not out_lo_parts:
        return CellBoxSet.empty(table.value_name, table.value_shape)
    lo = np.concatenate(out_lo_parts, axis=0)
    hi = np.concatenate(out_hi_parts, axis=0)
    result = CellBoxSet(table.value_name, table.value_shape, lo, hi).clipped()
    if merge:
        result = result.merged()
    return result


def theta_join_batch_reference(queries, table: CompressedLineage, merge: bool = True):
    """Loop-over-queries oracle for :func:`repro.core.query.theta_join_batch`:
    the batched kernel must be bit-identical to joining each query alone."""
    from .query import theta_join

    return [theta_join(query, table, merge=merge) for query in queries]


def merge_boxes_batch_reference(
    lo: np.ndarray, hi: np.ndarray, qid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Loop-over-queries oracle for the segmented batch merge: merge each
    query's boxes alone, then re-stack in ascending query order."""
    from .query import merge_boxes

    out_lo, out_hi, out_qid = [], [], []
    for q in np.unique(qid):
        mask = qid == q
        mlo, mhi = merge_boxes(lo[mask], hi[mask])
        out_lo.append(mlo)
        out_hi.append(mhi)
        out_qid.append(np.full(mlo.shape[0], q, dtype=np.int64))
    if not out_lo:
        return lo[:0], hi[:0], np.asarray(qid, dtype=np.int64)[:0]
    return (
        np.concatenate(out_lo, axis=0),
        np.concatenate(out_hi, axis=0),
        np.concatenate(out_qid),
    )


def execute_path_batch_reference(tables, queries, merge: bool = True):
    """Loop-over-queries oracle for
    :func:`repro.core.query.execute_path_batch`: one independent
    :func:`~repro.core.query.execute_path` run per query."""
    from .query import execute_path

    return [execute_path(list(tables), query, merge=merge) for query in queries]


def key_range_pass_reference(
    klo: np.ndarray,
    khi: np.ndarray,
    vkind: np.ndarray,
    vref: np.ndarray,
    vlo: np.ndarray,
    vhi: np.ndarray,
    relative: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The original sequential greedy run scan of the ProvRC key pass."""
    from .compressed import KIND_ABS

    nkey = klo.shape[1]
    nval = vlo.shape[1]
    if klo.shape[0] == 0:
        return klo, khi, vkind, vref, vlo, vhi
    if relative and vlo.dtype != np.int64:
        # mirror the vectorized pass: deltas overflow narrow value columns
        vlo = vlo.astype(np.int64)
        vhi = vhi.astype(np.int64)

    for kj in range(nkey - 1, -1, -1):
        n = klo.shape[0]
        sort_cols: List[np.ndarray] = []
        for j in range(nval - 1, -1, -1):
            sort_cols.append(vhi[:, j])
            sort_cols.append(vlo[:, j])
            sort_cols.append(vref[:, j].astype(np.int64))
            sort_cols.append(vkind[:, j].astype(np.int64))
        sort_cols.append(klo[:, kj])
        for j in range(nkey - 1, -1, -1):
            if j == kj:
                continue
            sort_cols.append(khi[:, j])
            sort_cols.append(klo[:, j])
        order = np.lexsort(sort_cols)
        klo, khi = klo[order], khi[order]
        vkind, vref = vkind[order], vref[order]
        vlo, vhi = vlo[order], vhi[order]

        base_ok = np.ones(n, dtype=bool)
        base_ok[0] = False
        for j in range(nkey):
            if j == kj:
                continue
            base_ok[1:] &= klo[1:, j] == klo[:-1, j]
            base_ok[1:] &= khi[1:, j] == khi[:-1, j]
        base_ok[1:] &= np.subtract(klo[1:, kj], khi[:-1, kj], dtype=np.int64) == 1

        keep_eq = np.zeros((nval, n), dtype=bool)
        delta_eq = np.zeros((nval, n), dtype=bool)
        for i in range(nval):
            keep_eq[i, 1:] = (
                (vkind[1:, i] == vkind[:-1, i])
                & (vref[1:, i] == vref[:-1, i])
                & (vlo[1:, i] == vlo[:-1, i])
                & (vhi[1:, i] == vhi[:-1, i])
            )
            if relative:
                both_abs = (vkind[1:, i] == KIND_ABS) & (vkind[:-1, i] == KIND_ABS)
                dlo_cur = vlo[1:, i] - klo[1:, kj]
                dlo_prev = vlo[:-1, i] - klo[:-1, kj]
                dhi_cur = vhi[1:, i] - klo[1:, kj]
                dhi_prev = vhi[:-1, i] - klo[:-1, kj]
                delta_eq[i, 1:] = both_abs & (dlo_cur == dlo_prev) & (dhi_cur == dhi_prev)

        can_merge = base_ok.copy()
        for i in range(nval):
            can_merge &= keep_eq[i] | delta_eq[i]

        base_run = _run_lengths(base_ok)
        keep_run = [_run_lengths(keep_eq[i]) for i in range(nval)]
        delta_run = [_run_lengths(delta_eq[i]) for i in range(nval)]
        merge_pos = np.flatnonzero(can_merge)

        out_klo, out_khi = [], []
        out_vkind, out_vref, out_vlo, out_vhi = [], [], [], []

        def emit_singletons(start: int, stop: int) -> None:
            if stop <= start:
                return
            out_klo.append(klo[start:stop])
            out_khi.append(khi[start:stop])
            out_vkind.append(vkind[start:stop])
            out_vref.append(vref[start:stop])
            out_vlo.append(vlo[start:stop])
            out_vhi.append(vhi[start:stop])

        s = 0
        mp_idx = 0
        n_merge = merge_pos.shape[0]
        while s < n:
            while mp_idx < n_merge and merge_pos[mp_idx] <= s:
                mp_idx += 1
            if mp_idx >= n_merge:
                emit_singletons(s, n)
                break
            nxt = int(merge_pos[mp_idx])
            if nxt > s + 1:
                emit_singletons(s, nxt - 1)
                s = nxt - 1
                continue
            length = int(base_run[s + 1]) if s + 1 < n else 0
            for i in range(nval):
                cand = max(int(keep_run[i][s + 1]), int(delta_run[i][s + 1]))
                length = min(length, cand)
            e = s + length
            merged_klo = klo[s].copy()
            merged_khi = khi[s].copy()
            merged_khi[kj] = khi[e, kj]
            merged_kind = vkind[s].copy()
            merged_ref = vref[s].copy()
            merged_vlo = vlo[s].copy()
            merged_vhi = vhi[s].copy()
            if length > 0:
                for i in range(nval):
                    if int(keep_run[i][s + 1]) >= length:
                        continue  # current encoding is constant across the run
                    merged_kind[i] = KIND_REL
                    merged_ref[i] = kj
                    merged_vlo[i] = vlo[s, i] - klo[s, kj]
                    merged_vhi[i] = vhi[s, i] - klo[s, kj]
            out_klo.append(merged_klo[None, :])
            out_khi.append(merged_khi[None, :])
            out_vkind.append(merged_kind[None, :])
            out_vref.append(merged_ref[None, :])
            out_vlo.append(merged_vlo[None, :])
            out_vhi.append(merged_vhi[None, :])
            s = e + 1

        klo = np.concatenate(out_klo, axis=0) if out_klo else klo[:0]
        khi = np.concatenate(out_khi, axis=0) if out_khi else khi[:0]
        vkind = np.concatenate(out_vkind, axis=0) if out_vkind else vkind[:0]
        vref = np.concatenate(out_vref, axis=0) if out_vref else vref[:0]
        vlo = np.concatenate(out_vlo, axis=0) if out_vlo else vlo[:0]
        vhi = np.concatenate(out_vhi, axis=0) if out_vhi else vhi[:0]

    return klo, khi, vkind, vref, vlo, vhi
