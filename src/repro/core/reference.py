"""Brute-force reference implementations of lineage queries.

These set-based routines define the ground truth that both the in-situ
query processor and every baseline must agree with.  They are deliberately
simple (hash joins over Python sets) and are used in tests and as the "Raw"
query strategy of the evaluation.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from .relation import LineageRelation

__all__ = ["query_path_reference", "single_hop_reference"]

Cell = Tuple[int, ...]


def single_hop_reference(
    relation: LineageRelation, cells: Iterable[Cell], direction: str
) -> Set[Cell]:
    """Answer a one-hop query with a brute-force scan.

    ``direction`` is ``"backward"`` when *cells* index the output array and
    the query asks for contributing input cells, ``"forward"`` for the
    reverse.
    """
    if direction == "backward":
        return relation.backward(cells)
    if direction == "forward":
        return relation.forward(cells)
    raise ValueError("direction must be 'forward' or 'backward'")


def query_path_reference(
    relations: Sequence[LineageRelation],
    directions: Sequence[str],
    query_cells: Iterable[Cell],
) -> Set[Cell]:
    """Answer a multi-hop path query by chaining brute-force hops.

    ``relations[i]`` links the ``i``-th and ``i+1``-th array in the path and
    ``directions[i]`` states whether that hop follows the relation forward
    (input array appears first in the path) or backward.
    """
    if len(relations) != len(directions):
        raise ValueError("relations and directions must have the same length")
    frontier: Set[Cell] = {tuple(int(v) for v in cell) for cell in query_cells}
    for relation, direction in zip(relations, directions):
        frontier = single_hop_reference(relation, frontier, direction)
        if not frontier:
            break
    return frontier
