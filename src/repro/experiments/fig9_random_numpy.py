"""Figure 9: average query latency over random numpy workflows.

Twenty workflows are generated for each chain length (five and ten
operations in the paper), each drawn from the 76-operation pipeline list
over a 100k-cell float64 array.  Forward queries over fixed-size random
cell ranges are timed for DSLog, DSLog-NoMerge (the merge-step ablation),
and the baselines; the harness reports average, minimum and maximum latency
per system, matching the interval bars of the figure.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..baselines.stores import ColumnarGzipStore, ColumnarStore, RawStore, TurboRCStore
from ..workloads.pipelines import Pipeline, random_numpy_pipeline
from .common import format_table
from .fig8_query_latency import query_cells_for_selectivity

__all__ = ["run", "main", "SYSTEMS"]

SYSTEMS = ["DSLog", "DSLog-NoMerge", "Raw", "Parquet", "Parquet-GZip", "Turbo-RC", "Array"]


def _build(pipeline: Pipeline, system: str):
    if system in ("DSLog", "DSLog-NoMerge"):
        return pipeline.load_into_dslog()
    if system == "Raw":
        return pipeline.load_into_baseline(RawStore())
    if system == "Parquet":
        return pipeline.load_into_baseline(ColumnarStore())
    if system == "Parquet-GZip":
        return pipeline.load_into_baseline(ColumnarGzipStore())
    if system == "Turbo-RC":
        return pipeline.load_into_baseline(TurboRCStore())
    if system == "Array":
        return pipeline.load_into_array_db()
    raise ValueError(f"unknown system {system!r}")


def run(
    n_workflows: int = 5,
    chain_lengths: Sequence[int] = (5, 10),
    n_cells: int = 20_000,
    query_cells: int = 200,
    systems: Sequence[str] = SYSTEMS,
    seed: int = 0,
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Measure per-system latency statistics for each chain length.

    Returns ``{chain_length: {system: {"avg"|"min"|"max": seconds}}}``.
    """
    results: Dict[int, Dict[str, Dict[str, float]]] = {}
    for length in chain_lengths:
        latencies: Dict[str, List[float]] = {s: [] for s in systems}
        for w in range(n_workflows):
            pipeline = random_numpy_pipeline(length, n_cells=n_cells, seed=seed + w)
            selectivity = query_cells / float(np.prod(pipeline.first_shape))
            cells = query_cells_for_selectivity(pipeline.first_shape, selectivity, seed=seed + w)
            answers = set()
            for system in systems:
                engine = _build(pipeline, system)
                start = time.perf_counter()
                if system == "DSLog":
                    answer = engine.prov_query(pipeline.path, cells).count_cells()
                elif system == "DSLog-NoMerge":
                    answer = engine.prov_query(pipeline.path, cells, merge=False).count_cells()
                else:
                    answer = len(engine.query_path(pipeline.path, cells))
                latencies[system].append(time.perf_counter() - start)
                answers.add(answer)
            if len(answers) != 1:
                raise AssertionError(f"systems disagree on workflow {pipeline.name}: {answers}")
        results[length] = {
            system: {
                "avg": float(np.mean(values)),
                "min": float(np.min(values)),
                "max": float(np.max(values)),
            }
            for system, values in latencies.items()
        }
    return results


def main(n_workflows: int = 3, chain_lengths: Sequence[int] = (5, 10), n_cells: int = 20_000) -> str:
    results = run(n_workflows=n_workflows, chain_lengths=chain_lengths, n_cells=n_cells)
    blocks = []
    for length, per_system in results.items():
        headers = ["System", "avg (s)", "min (s)", "max (s)"]
        rows = [
            [system, round(stats["avg"], 4), round(stats["min"], 4), round(stats["max"], 4)]
            for system, stats in per_system.items()
        ]
        blocks.append(
            format_table(headers, rows, title=f"Figure 9 — random numpy workflows, {length} operations")
        )
    output = "\n\n".join(blocks)
    print(output)
    return output


if __name__ == "__main__":
    main()
