"""Experiment harnesses: one module per paper table/figure.

* :mod:`repro.experiments.table7_compression` — Table VII (storage size).
* :mod:`repro.experiments.fig7_compression_latency` — Figure 7 (latency).
* :mod:`repro.experiments.fig8_query_latency` — Figure 8 (workflow queries).
* :mod:`repro.experiments.fig9_random_numpy` — Figure 9 (random workflows).
* :mod:`repro.experiments.table9_coverage` — Table IX (numpy coverage).
* :mod:`repro.experiments.table10_workflows` — Table X (workflow coverage).

Each module exposes ``run(...)`` returning structured results and a
``main()`` that prints the paper-style table; run them with
``python -m repro.experiments.<module>``.
"""

from . import (
    fig7_compression_latency,
    fig8_query_latency,
    fig9_random_numpy,
    table7_compression,
    table9_coverage,
    table10_workflows,
)

__all__ = [
    "table7_compression",
    "fig7_compression_latency",
    "fig8_query_latency",
    "fig9_random_numpy",
    "table9_coverage",
    "table10_workflows",
]
