"""Table X: compressible operations and longest chains in data-science workflows.

Twenty notebook-like workflow traces are generated for each dataset
(Flight-like and Netflix-like mixes of exploration and machine-learning
work); every operation is classified against ProvRC's three lineage
patterns, and the harness reports the same mean ± standard deviation
statistics as the paper's manual inspection.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


from ..workloads.kaggle import generate_workflows, summarize
from .common import format_table

__all__ = ["run", "main"]

DATASETS = ("Flight", "Netflix")


def run(n_workflows: int = 10, datasets: Sequence[str] = DATASETS, seed: int = 0) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Summary statistics per dataset plus the combined 'Total' row."""
    all_traces = []
    results: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for dataset in datasets:
        traces = generate_workflows(dataset, n_workflows=n_workflows, seed=seed)
        all_traces.extend(traces)
        results[dataset] = summarize(traces)
    results["Total"] = summarize(all_traces)
    return results


def main(n_workflows: int = 10) -> str:
    results = run(n_workflows=n_workflows)
    headers = ["Dataset", "Total Op.", "Compressible Op.", "Compressible %", "Longest Chain"]
    rows = []
    for dataset, stats in results.items():
        rows.append([
            dataset,
            f"{stats['total_ops'][0]:.1f} ± {stats['total_ops'][1]:.1f}",
            f"{stats['compressible_ops'][0]:.1f} ± {stats['compressible_ops'][1]:.1f}",
            f"{stats['compressible_pct'][0]:.1f} ± {stats['compressible_pct'][1]:.1f}",
            f"{stats['longest_chain'][0]:.1f} ± {stats['longest_chain'][1]:.1f}",
        ])
    table = format_table(headers, rows, title="Table X — compressible operations in data-science workflows")
    print(table)
    return table


if __name__ == "__main__":
    main()
