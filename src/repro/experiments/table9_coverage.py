"""Table IX: numpy API operations covered by compression and reuse.

Every operation of the 136-operation catalog is executed for a number of
runs (20 in the paper) over fresh random inputs of varying shapes; its
lineage is compressed with ProvRC and fed to the automatic reuse predictor.
The harness then tallies, per category (element-wise / complex):

* operations whose ProvRC table is smaller than half the raw CSV lineage,
* operations for which a shape-based (``dim_sig``) mapping was discovered,
* operations for which a generalized (``gen_sig``) mapping was discovered,
* reuse errors — generalized mappings that later produce wrong lineage
  (the paper observes exactly one, for ``cross``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..capture.numpy_catalog import CatalogOp, build_catalog
from ..core.provrc import compress
from ..core.serialize import serialize_compressed
from ..reuse.signatures import OperationSignature, ReuseManager, tables_equal
from .common import format_table

__all__ = ["run", "main"]


def _input_for(op: CatalogOp, rng: np.random.Generator, base_size: int) -> np.ndarray:
    if op.name == "cross_const":
        width = 3 if rng.uniform() < 0.5 else 2
        return rng.normal(size=(max(base_size // width, 2), width))
    if op.needs_2d:
        rows = max(int(rng.integers(3, 9)), 3)
        cols = max(base_size // rows, 2)
        return rng.normal(size=(rows, cols))
    return rng.normal(size=base_size)


def _evaluate_op(op: CatalogOp, runs: int, base_size: int, seed: int) -> Dict[str, bool]:
    rng = np.random.default_rng(seed)
    manager = ReuseManager(confirmations_required=1)
    compressed_small = True
    gen_error = False

    for run_idx in range(runs):
        # Alternate between repeating the base shape (so shape-based dim_sig
        # mappings can be confirmed) and drawing a new shape (so generalized
        # gen_sig mappings can be confirmed across shapes).
        if run_idx % 2 == 0:
            size = base_size
        else:
            size = base_size + int(rng.integers(1, max(base_size // 2, 2)))
        data = _input_for(op, rng, size)
        relation = op.lineage(data)
        table = compress(relation, key="output")

        raw_csv = len(relation.to_csv_bytes())
        if len(serialize_compressed(table)) >= 0.5 * raw_csv:
            compressed_small = False

        signature = OperationSignature.build(op.name, [data], [relation.out_shape])
        decision = manager.lookup(signature)
        if decision.reused and decision.level == "gen":
            predicted = next(iter(decision.tables.values()))
            if not tables_equal(predicted, table):
                gen_error = True
                manager.record_misprediction()
        manager.observe(signature, {(0, 0): table})

    stats = manager.stats()
    return {
        "compressed": compressed_small,
        "dim": stats["dim_entries"] > 0,
        "gen": stats["gen_entries"] > 0 and stats["blocked_gen"] == 0,
        "error": gen_error or stats["mispredictions"] > 0,
    }


def run(
    runs: int = 10,
    base_size: int = 400,
    operations: Optional[Sequence[CatalogOp]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Evaluate compression/reuse coverage; returns per-category tallies."""
    catalog = list(operations) if operations is not None else build_catalog()
    tallies = {
        "element": {"total": 0, "provrc": 0, "dim_sig": 0, "gen_sig": 0, "error": 0},
        "complex": {"total": 0, "provrc": 0, "dim_sig": 0, "gen_sig": 0, "error": 0},
    }
    for index, op in enumerate(catalog):
        outcome = _evaluate_op(op, runs=runs, base_size=base_size, seed=seed + index)
        bucket = tallies[op.category]
        bucket["total"] += 1
        bucket["provrc"] += int(outcome["compressed"])
        bucket["dim_sig"] += int(outcome["dim"])
        bucket["gen_sig"] += int(outcome["gen"])
        bucket["error"] += int(outcome["error"])
    tallies["total"] = {
        key: tallies["element"][key] + tallies["complex"][key]
        for key in ("total", "provrc", "dim_sig", "gen_sig", "error")
    }
    return tallies


def main(runs: int = 10, base_size: int = 400) -> str:
    tallies = run(runs=runs, base_size=base_size)
    headers = ["Op.", "Tot.", "ProvRC", "ProvRC %", "dim_sig", "dim %", "gen_sig", "gen %", "Error"]
    rows = []
    for category in ("element", "complex", "total"):
        bucket = tallies[category]
        total = bucket["total"]
        rows.append([
            category,
            total,
            bucket["provrc"],
            round(100.0 * bucket["provrc"] / total, 1),
            bucket["dim_sig"],
            round(100.0 * bucket["dim_sig"] / total, 1),
            bucket["gen_sig"],
            round(100.0 * bucket["gen_sig"] / total, 1),
            bucket["error"],
        ])
    table = format_table(headers, rows, title="Table IX — numpy API coverage of compression and reuse")
    print(table)
    return table


if __name__ == "__main__":
    main()
