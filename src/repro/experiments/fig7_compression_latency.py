"""Figure 7: compression latency as a function of input size.

The paper measures the end-to-end time (read, format conversion,
compression, flush to disk) to store the lineage of (A) a one-to-one
element-wise operation and (B) a one-axis aggregation, over a range of
array sizes, for every format.  The harness reproduces the same sweep at
laptop scale; ProvRC-GZip is implemented in pure Python so its absolute
latency sits above the (C++-grade) baselines in the paper, and the same
ordering is expected here.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..baselines.stores import all_baseline_stores
from ..capture.analytic import axis_reduction_lineage, elementwise_lineage
from ..core.provrc import compress
from ..core.serialize import serialize_compressed_gzip
from .common import format_table

__all__ = ["run", "main", "LINEAGE_KINDS"]

LINEAGE_KINDS = ("elementwise", "aggregate")


def _build_relation(kind: str, n_cells: int):
    if kind == "elementwise":
        return elementwise_lineage((n_cells,))
    if kind == "aggregate":
        side = max(int(n_cells ** 0.5), 1)
        return axis_reduction_lineage((side, side), axis=1)
    raise ValueError(f"unknown lineage kind {kind!r}")


def run(
    sizes: Sequence[int] = (10_000, 50_000, 100_000, 250_000),
    kinds: Sequence[str] = LINEAGE_KINDS,
    formats: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Measure write latency in seconds per (kind, format, size)."""
    stores = all_baseline_stores()
    chosen = list(formats) if formats else list(stores) + ["ProvRC-GZip"]
    results: Dict[str, Dict[str, Dict[int, float]]] = {k: {f: {} for f in chosen} for k in kinds}
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        for kind in kinds:
            for n_cells in sizes:
                relation = _build_relation(kind, n_cells)
                for fmt in chosen:
                    target = tmp_path / f"{kind}-{fmt}-{n_cells}.bin"
                    start = time.perf_counter()
                    if fmt == "ProvRC-GZip":
                        payload = serialize_compressed_gzip(compress(relation, key="output"))
                    else:
                        payload = stores[fmt].encode(relation.rows)
                    target.write_bytes(payload)
                    results[kind][fmt][n_cells] = time.perf_counter() - start
    return results


def main(sizes: Sequence[int] = (10_000, 50_000, 100_000)) -> str:
    results = run(sizes=sizes)
    lines = []
    for kind, per_format in results.items():
        headers = ["Format"] + [f"{n} cells (s)" for n in sizes]
        rows = [[fmt] + [round(per_format[fmt][n], 4) for n in sizes] for fmt in per_format]
        lines.append(format_table(headers, rows, title=f"Figure 7 ({kind}) — compression latency"))
    output = "\n\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
