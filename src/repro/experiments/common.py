"""Shared helpers for the experiment harnesses (formatting, timing, sizes)."""

from __future__ import annotations

import time
from typing import Iterable, List, Sequence

from ..core.provrc import compress
from ..core.relation import LineageRelation
from ..core.serialize import serialize_compressed, serialize_compressed_gzip

__all__ = ["Timer", "format_table", "provrc_bytes", "provrc_gzip_bytes", "mb"]


class Timer:
    """Wall-clock timer usable as a context manager."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def mb(nbytes: float) -> float:
    """Bytes to megabytes (10^6, as the paper reports)."""
    return nbytes / 1e6


def provrc_bytes(relations: Iterable[LineageRelation]) -> int:
    """Long-term ProvRC storage (backward tables) of a set of relations."""
    return sum(len(serialize_compressed(compress(rel, key="output"))) for rel in relations)


def provrc_gzip_bytes(relations: Iterable[LineageRelation]) -> int:
    """ProvRC-GZip storage of a set of relations."""
    return sum(len(serialize_compressed_gzip(compress(rel, key="output"))) for rel in relations)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table (used by every ``python -m repro.experiments.*``)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".") if "." in f"{cell:.4f}" else f"{cell:.4f}"
    return str(cell)
