"""Figure 8: query latency over the image, relational and ResNet workflows.

Each workflow is loaded once into DSLog (ProvRC tables, in-situ θ-joins) and
into every baseline database (decode + join per hop); forward queries over a
sweep of query selectivities (percentage of the initial array's cells) are
then timed end to end, mirroring the paper's wall-clock measurement from
query issue to response.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.stores import ColumnarGzipStore, ColumnarStore, RawStore, TurboRCStore
from ..workloads.pipelines import Pipeline, image_pipeline, relational_pipeline, resnet_block_pipeline
from .common import format_table

__all__ = ["run", "main", "SYSTEMS", "query_cells_for_selectivity"]

SYSTEMS = ["DSLog", "Raw", "Parquet", "Parquet-GZip", "Turbo-RC", "Array"]


def query_cells_for_selectivity(shape: Tuple[int, ...], selectivity: float, seed: int = 0) -> List[Tuple[int, ...]]:
    """A contiguous block of cells covering *selectivity* of the array."""
    total = int(np.prod(shape))
    count = max(int(total * selectivity), 1)
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, max(total - count, 1)))
    flat = np.arange(start, start + count)
    coords = np.unravel_index(flat, shape)
    return [tuple(int(c[i]) for c in coords) for i in range(count)]


def _build_systems(pipeline: Pipeline, systems: Sequence[str]):
    built = {}
    for system in systems:
        if system == "DSLog":
            built[system] = pipeline.load_into_dslog()
        elif system == "Raw":
            built[system] = pipeline.load_into_baseline(RawStore())
        elif system == "Parquet":
            built[system] = pipeline.load_into_baseline(ColumnarStore())
        elif system == "Parquet-GZip":
            built[system] = pipeline.load_into_baseline(ColumnarGzipStore())
        elif system == "Turbo-RC":
            built[system] = pipeline.load_into_baseline(TurboRCStore())
        elif system == "Array":
            built[system] = pipeline.load_into_array_db()
        else:
            raise ValueError(f"unknown system {system!r}")
    return built


def _time_query(system_name: str, system, pipeline: Pipeline, cells) -> Tuple[float, int]:
    start = time.perf_counter()
    if system_name == "DSLog":
        result = system.prov_query(pipeline.path, cells)
        count = result.count_cells()
    else:
        answer = system.query_path(pipeline.path, cells)
        count = len(answer)
    return time.perf_counter() - start, count


def run(
    pipelines: Optional[Dict[str, Pipeline]] = None,
    selectivities: Sequence[float] = (0.001, 0.01, 0.05, 0.2),
    systems: Sequence[str] = SYSTEMS,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Measure query latency (seconds) per (workflow, system, selectivity)."""
    if pipelines is None:
        pipelines = {
            "image": image_pipeline(64, 64),
            "relational": relational_pipeline(1500, 1000),
            "resnet": resnet_block_pipeline(32, 32),
        }
    results: Dict[str, Dict[str, Dict[float, float]]] = {}
    for workflow_name, pipeline in pipelines.items():
        built = _build_systems(pipeline, systems)
        per_system: Dict[str, Dict[float, float]] = {s: {} for s in systems}
        counts: Dict[float, set] = {}
        for selectivity in selectivities:
            cells = query_cells_for_selectivity(pipeline.first_shape, selectivity, seed=seed)
            for system_name in systems:
                latency, count = _time_query(system_name, built[system_name], pipeline, cells)
                per_system[system_name][selectivity] = latency
                counts.setdefault(selectivity, set()).add(count)
        # all systems must agree on the answer cardinality (correctness check)
        for selectivity, observed in counts.items():
            if len(observed) != 1:
                raise AssertionError(
                    f"systems disagree on {workflow_name} at selectivity {selectivity}: {observed}"
                )
        results[workflow_name] = per_system
    return results


def main(selectivities: Sequence[float] = (0.001, 0.01, 0.05)) -> str:
    results = run(selectivities=selectivities)
    blocks = []
    for workflow_name, per_system in results.items():
        headers = ["System"] + [f"sel={s:g}" for s in selectivities]
        rows = [
            [system] + [round(per_system[system][s], 4) for s in selectivities]
            for system in per_system
        ]
        blocks.append(
            format_table(headers, rows, title=f"Figure 8 ({workflow_name}) — query latency (s)")
        )
    output = "\n\n".join(blocks)
    print(output)
    return output


if __name__ == "__main__":
    main()
