"""Table VII: size on disk of each compression format per operation.

For every Table VII operation the harness captures the lineage, stores it in
each baseline format plus ProvRC / ProvRC-GZip, and reports absolute size
and the ratio relative to the Raw format (the paper's "Rel (%)" columns).
Absolute numbers are smaller than the paper's (the arrays are laptop-scale);
the comparison of formats — which ones exploit which lineage patterns — is
the reproduced result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.stores import all_baseline_stores
from ..workloads.operations import compression_workloads
from .common import format_table, mb, provrc_bytes, provrc_gzip_bytes

__all__ = ["run", "main", "FORMATS"]

FORMATS = ["Raw", "Array", "Parquet", "Parquet-GZip", "Turbo-RC", "ProvRC", "ProvRC-GZip"]


def run(scale: float = 0.2, operations: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Measure on-disk bytes per (operation, format).

    Returns ``{operation: {format: bytes}}``.
    """
    workloads = compression_workloads()
    names = list(operations) if operations else list(workloads)
    stores = all_baseline_stores()
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        relations = workloads[name].build(scale)
        sizes: Dict[str, float] = {}
        for store_name, store in stores.items():
            sizes[store_name] = float(sum(store.size_bytes(rel.rows) for rel in relations))
        sizes["ProvRC"] = float(provrc_bytes(relations))
        sizes["ProvRC-GZip"] = float(provrc_gzip_bytes(relations))
        results[name] = sizes
    return results


def as_rows(results: Dict[str, Dict[str, float]]) -> List[List[object]]:
    rows: List[List[object]] = []
    for operation, sizes in results.items():
        raw = sizes["Raw"]
        row: List[object] = [operation, round(mb(raw), 4)]
        for fmt in FORMATS[1:]:
            row.append(round(mb(sizes[fmt]), 5))
            row.append(round(100.0 * sizes[fmt] / raw, 4))
        rows.append(row)
    return rows


def main(scale: float = 0.2) -> str:
    results = run(scale=scale)
    headers = ["Operation", "Raw (MB)"]
    for fmt in FORMATS[1:]:
        headers += [f"{fmt} (MB)", f"{fmt} (%)"]
    table = format_table(headers, as_rows(results), title="Table VII — compression size per format")
    print(table)
    return table


if __name__ == "__main__":
    main()
