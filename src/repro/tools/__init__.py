"""Operational command-line tools for DSLog catalog directories."""
