"""``python -m repro.tools.scrub`` — fsck a DSLog catalog directory.

Verifies every manifest-referenced record (structure and CRC32 checksums),
reports torn tails, truncated and missing segments, and orphan files; with
``--repair``, quarantines the damage into ``<root>/quarantine/`` and heals
the catalog with zero valid-record loss (see :mod:`repro.storage.scrub`).

Usage::

    python -m repro.tools.scrub /path/to/catalog            # detect only
    python -m repro.tools.scrub /path/to/catalog --repair   # heal in place
    python -m repro.tools.scrub /path/to/catalog --json     # raw report

Exit status: 0 when the catalog is clean (or was fully repaired), 1 when
damage was found and left in place (detect-only run), 2 when the directory
is not a DSLog catalog or the scrub itself failed.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..dslog import DSLog

__all__ = ["main"]


def _summarize(report: dict, out) -> bool:
    """Print a human summary of one store's report; returns cleanliness."""
    shards = report.get("shards")
    if shards is not None:
        clean = True
        for idx in sorted(shards):
            clean &= _summarize(shards[idx], out)
        return clean
    status = "clean" if report["clean"] else "DAMAGED"
    if report.get("repaired"):
        status = "repaired"
    print(
        f"{report['root']}: {status} "
        f"({report['segments_checked']} segments, "
        f"{report['records_checked']} records checked)",
        file=out,
    )
    for rec in report["corrupt_records"]:
        print(
            f"  corrupt record [{rec['class']}] {rec['kind']} "
            f"{rec['segment']}@{rec['offset']}+{rec['length']}",
            file=out,
        )
    for seg in report["damaged_segments"]:
        print(
            f"  damaged segment {seg['segment']} ({seg['reason']}, "
            f"{seg['torn_bytes']} torn bytes)",
            file=out,
        )
    for name in report["orphan_segments"]:
        print(f"  orphan segment {name}", file=out)
    if report.get("repaired"):
        print(
            f"  healed: {report['rebuilt_orientations']} orientations rebuilt, "
            f"{report['evacuated_records']} records evacuated, "
            f"{len(report['dropped_entries'])} entries dropped, "
            f"{len(report['quarantined'])} files quarantined "
            f"-> generation {report['generation']}",
            file=out,
        )
        for pair in report["dropped_entries"]:
            print(f"  DROPPED entry {pair[0]} -> {pair[1]} (both orientations damaged)", file=out)
    return report["clean"] or bool(report.get("repaired"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.scrub",
        description="fsck a DSLog catalog directory (segment or sharded backend)",
    )
    parser.add_argument("root", help="catalog directory (holds MANIFEST.json or SHARDS.json)")
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damage and heal the catalog (default: detect only)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the raw scrub report as JSON"
    )
    args = parser.parse_args(argv)

    try:
        log = DSLog.load(args.root, autosync=False)
    except (ValueError, FileNotFoundError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = log.scrub(repair=args.repair)
    except RuntimeError as exc:  # e.g. the directory held no durable catalog
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        log.close()

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        shards = report.get("shards")
        if shards is not None:
            clean = all(
                r["clean"] or r.get("repaired") for r in shards.values()
            )
        else:
            clean = report["clean"] or bool(report.get("repaired"))
    else:
        clean = _summarize(report, sys.stdout)
    return 0 if clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
