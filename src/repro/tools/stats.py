"""``python -m repro.tools.stats`` — inspect a lineage server's metrics.

Fetches ``GET /metrics`` from a running :class:`~repro.service.server.
LineageServer`, parses the Prometheus text exposition, and pretty-prints
every counter, gauge and histogram (histograms show count, sum and the
p50/p95/p99 estimated from the cumulative buckets).  With ``--watch SECS``
it keeps sampling and additionally prints per-second rates for counters
and histogram counts, computed over the sampling interval.

Usage::

    python -m repro.tools.stats http://127.0.0.1:8791            # one shot
    python -m repro.tools.stats http://127.0.0.1:8791 --watch 2  # live rates
    python -m repro.tools.stats http://127.0.0.1:8791 --json     # snapshot
    python -m repro.tools.stats http://127.0.0.1:8791 --grep cache

Exit status: 0 on success, 1 when the server cannot be reached or serves
unparseable metrics.  ``--watch`` runs until interrupted (also exit 0).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from ..obs.metrics import parse_prometheus_text, quantile_from_buckets

__all__ = ["main"]


def fetch_families(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/metrics`` and parse it; raises on transport or format
    errors (the caller turns both into exit status 1)."""
    target = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        text = response.read().decode("utf-8")
    return parse_prometheus_text(text)


def _labels_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _histogram_series(family: dict) -> dict:
    """Group one histogram family's flat samples by their label set (minus
    ``le``): key -> {labels, buckets: [(le, cumcount)], sum, count}."""
    series: dict = {}
    for sample, labels, value in family["samples"]:
        rest = {k: v for k, v in labels.items() if k != "le"}
        key = tuple(sorted(rest.items()))
        entry = series.setdefault(key, {"labels": rest, "buckets": [], "sum": 0.0, "count": 0.0})
        if sample.endswith("_bucket"):
            entry["buckets"].append((float(labels["le"]), value))
        elif sample.endswith("_sum"):
            entry["sum"] = value
        elif sample.endswith("_count"):
            entry["count"] = value
    for entry in series.values():
        entry["buckets"].sort(key=lambda pair: pair[0])
    return series


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _rate(delta: float, interval: float) -> str:
    return f"{delta / interval:.1f}/s" if interval > 0 else "-"


def render_report(families: dict, out, previous=None, interval: float = 0.0) -> dict:
    """Print the human report; returns a flat {series key: value} map of
    counter and histogram-count samples for the next --watch delta."""
    flat: dict = {}
    for name in sorted(families):
        family = families[name]
        kind = family["type"]
        if kind == "histogram":
            print(f"{name} (histogram)", file=out)
            for _, entry in sorted(_histogram_series(family).items()):
                buckets = entry["buckets"]
                count = entry["count"]
                quantiles = ""
                if count:
                    p50, p95, p99 = (
                        quantile_from_buckets(buckets, q) for q in (0.5, 0.95, 0.99)
                    )
                    mean = entry["sum"] / count
                    quantiles = (
                        f"  mean={mean:.6g} p50={p50:.6g} p95={p95:.6g} p99={p99:.6g}"
                    )
                key = f"{name}{_labels_suffix(entry['labels'])}"
                flat[key] = count
                rate = ""
                if previous is not None and key in previous:
                    rate = f"  [{_rate(count - previous[key], interval)}]"
                label_part = _labels_suffix(entry["labels"]) or "(all)"
                print(
                    f"  {label_part}  count={_fmt(count)} "
                    f"sum={_fmt(entry['sum'])}{quantiles}{rate}",
                    file=out,
                )
            continue
        print(f"{name} ({kind})", file=out)
        for sample, labels, value in sorted(
            family["samples"], key=lambda item: sorted(item[1].items())
        ):
            key = f"{sample}{_labels_suffix(labels)}"
            rate = ""
            if kind == "counter":
                flat[key] = value
                if previous is not None and key in previous:
                    rate = f"  [{_rate(value - previous[key], interval)}]"
            label_part = _labels_suffix(labels) or "(all)"
            print(f"  {label_part}  {_fmt(value)}{rate}", file=out)
    return flat


def _filter(families: dict, needle: str) -> dict:
    return {name: fam for name, fam in families.items() if needle in name}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.stats",
        description="Fetch and pretty-print a lineage server's /metrics.",
    )
    parser.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8791")
    parser.add_argument(
        "--watch",
        type=float,
        metavar="SECS",
        default=None,
        help="keep sampling every SECS seconds and print counter rates",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the parsed families as JSON instead of the report",
    )
    parser.add_argument(
        "--grep",
        metavar="SUBSTR",
        default=None,
        help="only show metric families whose name contains SUBSTR",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, help="per-request timeout in seconds"
    )
    args = parser.parse_args(argv)

    if args.watch is not None and args.watch <= 0:
        parser.error("--watch needs a positive interval")

    previous = None
    last_at = None
    while True:
        try:
            families = fetch_families(args.url, timeout=args.timeout)
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        now = time.monotonic()
        if args.grep:
            families = _filter(families, args.grep)
        if args.json:
            json.dump(families, sys.stdout, indent=2, sort_keys=True, default=str)
            print()
        else:
            interval = (now - last_at) if last_at is not None else 0.0
            previous = render_report(
                families, sys.stdout, previous=previous, interval=interval
            )
            last_at = now
        if args.watch is None:
            return 0
        print(file=sys.stdout)
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
