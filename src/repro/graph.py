"""Lineage-graph navigation and query planning (``LineageGraph``).

The catalog stores lineage as individual ``(input array, output array)``
entries; this module turns that edge set into a navigable graph so callers
can ask questions about the lineage *structure* without hand-writing hop
lists — the lineage-tree analytics idiom: resolve the path(s) between two
arrays automatically, compute the transitive impact or dependency closure
of an array, and summarize the whole catalog's shape (fan-in/out, roots,
leaves, depth).

``DSLog.prov_query`` uses :meth:`LineageGraph.shortest_paths` as its query
planner: a two-array path with no directly stored entry is resolved to the
shortest stored path(s) — forward along lineage edges if one exists,
otherwise backward — and when several equally short paths exist (a diamond
DAG) the per-path results are unioned.

A graph instance tracks the catalog *incrementally*: it records the catalog
version it was built from, and :meth:`LineageGraph.refresh` folds in only
the entries and arrays added since — new edges are merged into the existing
adjacency index instead of rebuilding the whole graph, and the memoized path
lists are invalidated.  ``DSLog.graph`` calls ``refresh()`` on every access,
so a planned query after a burst of ingest pays O(new entries), not
O(catalog).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from .storage.catalog import Catalog

__all__ = ["LineageGraph"]


class LineageGraph:
    """Adjacency index plus path planner over a catalog's lineage entries."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.version = catalog.version
        self._lock = threading.RLock()
        self._out: Dict[str, List[str]] = {name: [] for name in catalog.arrays}
        self._in: Dict[str, List[str]] = {name: [] for name in catalog.arrays}
        self._known_pairs: Set[Tuple[str, str]] = set()
        self.refresh_count = 0
        for in_name, out_name in catalog.entry_pairs():
            self._known_pairs.add((in_name, out_name))
            self._out.setdefault(in_name, []).append(out_name)
            self._in.setdefault(out_name, []).append(in_name)
            self._out.setdefault(out_name, [])
            self._in.setdefault(in_name, [])
        # deterministic traversal (and therefore deterministic path order)
        for adjacency in (self._out, self._in):
            for neighbors in adjacency.values():
                neighbors.sort()
        self._path_memo: Dict[Tuple[str, str], List[List[str]]] = {}

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> bool:
        """Fold catalog changes since the last refresh into the graph.

        Keyed on the catalog's generation counter: when the version is
        unchanged (and no arrays were defined in the meantime) this is a
        two-comparison no-op, so calling it on every ``DSLog.graph`` access
        is free.  Otherwise only the *new* entries' edges are merged into
        the adjacency index — each touched neighbor list is re-sorted to
        keep traversal deterministic — and the path memo is dropped
        (replaced entries change tables, never edges, so adjacency needs no
        downgrade handling).  Returns whether anything changed.
        """
        catalog = self.catalog
        if self.version == catalog.version and len(self._out) == len(catalog.arrays):
            return False
        with self._lock:
            if self.version == catalog.version and len(self._out) == len(catalog.arrays):
                return False
            for name in catalog.arrays:
                if name not in self._out:
                    self._out[name] = []
                    self._in[name] = []
            touched_out: Set[str] = set()
            touched_in: Set[str] = set()
            for pair in catalog.entry_pairs():
                if pair in self._known_pairs:
                    continue
                self._known_pairs.add(pair)
                in_name, out_name = pair
                self._out.setdefault(in_name, []).append(out_name)
                self._in.setdefault(out_name, []).append(in_name)
                self._out.setdefault(out_name, [])
                self._in.setdefault(in_name, [])
                touched_out.add(in_name)
                touched_in.add(out_name)
            for name in touched_out:
                self._out[name].sort()
            for name in touched_in:
                self._in[name].sort()
            self._path_memo.clear()
            self.version = catalog.version
            self.refresh_count += 1
            return True

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def _check(self, name: str) -> None:
        if name not in self._out:
            raise KeyError(f"array {name!r} is not defined in the catalog")

    def successors(self, name: str) -> List[str]:
        """Arrays directly derived from *name* (one lineage hop forward)."""
        self._check(name)
        return list(self._out[name])

    def predecessors(self, name: str) -> List[str]:
        """Arrays *name* was directly derived from (one hop backward)."""
        self._check(name)
        return list(self._in[name])

    def edges(self) -> List[Tuple[str, str]]:
        """Every stored lineage edge as a sorted ``(input, output)`` list —
        the full DAG, so remote clients (the HTTP ``/graph/summary``
        endpoint) can reconstruct structure the closures alone cannot."""
        with self._lock:
            return sorted(self._known_pairs)

    def fan_out(self, name: str) -> int:
        self._check(name)
        return len(self._out[name])

    def fan_in(self, name: str) -> int:
        self._check(name)
        return len(self._in[name])

    # ------------------------------------------------------------------
    # path planning
    # ------------------------------------------------------------------
    def shortest_paths(self, src: str, dst: str) -> List[List[str]]:
        """Every shortest stored path from *src* to *dst*.

        Forward paths (following lineage edges) win over backward paths
        (against the edges); within a direction all paths of minimal hop
        count are returned, each as the full array sequence starting at
        *src*.  Returns ``[]`` when the arrays are not connected.
        """
        self._check(src)
        self._check(dst)
        with self._lock:
            memo = self._path_memo.get((src, dst))
            if memo is not None:
                return [list(path) for path in memo]
            paths = self._bfs_all_shortest(src, dst, self._out)
            if not paths:
                paths = self._bfs_all_shortest(src, dst, self._in)
            self._path_memo[(src, dst)] = [list(path) for path in paths]
            return paths

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """The first (lexicographically smallest) shortest path, or a
        ``KeyError`` when no stored path connects the two arrays."""
        paths = self.shortest_paths(src, dst)
        if not paths:
            raise KeyError(f"no lineage path between {src!r} and {dst!r}")
        return paths[0]

    @staticmethod
    def _bfs_all_shortest(
        src: str, dst: str, adjacency: Dict[str, List[str]]
    ) -> List[List[str]]:
        if src == dst:
            return [[src]]
        dist: Dict[str, int] = {src: 0}
        parents: Dict[str, List[str]] = {}
        queue = deque([src])
        found: Optional[int] = None
        while queue:
            node = queue.popleft()
            depth = dist[node]
            if found is not None and depth + 1 > found:
                break
            for neighbor in adjacency[node]:
                known = dist.get(neighbor)
                if known is None:
                    dist[neighbor] = depth + 1
                    parents[neighbor] = [node]
                    if neighbor == dst:
                        found = depth + 1
                    else:
                        queue.append(neighbor)
                elif known == depth + 1:
                    parents[neighbor].append(node)
        if found is None:
            return []
        # unwind every parent chain; adjacency is sorted, so the resulting
        # path list is deterministic (lexicographic by hop sequence)
        paths: List[List[str]] = []

        def unwind(node: str, suffix: List[str]) -> None:
            if node == src:
                paths.append([src] + suffix)
                return
            for parent in parents[node]:
                unwind(parent, [node] + suffix)

        unwind(dst, [])
        paths.sort()
        return paths

    # ------------------------------------------------------------------
    # transitive closures
    # ------------------------------------------------------------------
    def impact(self, name: str) -> Dict[str, int]:
        """Every array transitively derived from *name*, mapped to its hop
        distance (the downstream closure: what a change here touches)."""
        return self._closure(name, self._out)

    def dependencies(self, name: str) -> Dict[str, int]:
        """Every array *name* transitively depends on, mapped to its hop
        distance (the upstream closure: what produced this array)."""
        return self._closure(name, self._in)

    def _closure(self, name: str, adjacency: Dict[str, List[str]]) -> Dict[str, int]:
        self._check(name)
        dist: Dict[str, int] = {name: 0}
        queue = deque([name])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        del dist[name]
        return dist

    # ------------------------------------------------------------------
    # summary analytics
    # ------------------------------------------------------------------
    def lineage_summary(self) -> dict:
        """Aggregate shape of the lineage graph (the lineage-fate summary).

        Counts arrays, entries and operations; classifies arrays into
        roots (sources: produce lineage but have none), leaves (sinks),
        isolated arrays (tracked but unconnected); reports per-array
        fan-in/fan-out, the maximum lineage depth (longest path through the
        DAG; ``None`` when the graph has a cycle), and how many arrays each
        registered operation touched on average.
        """
        roots = sorted(
            name for name in self._out if not self._in[name] and self._out[name]
        )
        leaves = sorted(
            name for name in self._out if not self._out[name] and self._in[name]
        )
        isolated = sorted(
            name for name in self._out if not self._out[name] and not self._in[name]
        )
        operations = self.catalog.operations
        touched = [len(set(op.in_arrs) | set(op.out_arrs)) for op in operations]
        return {
            "arrays": len(self._out),
            "entries": len(self.catalog),
            "operations": len(operations),
            "roots": roots,
            "leaves": leaves,
            "isolated": isolated,
            "fan_in": {name: len(self._in[name]) for name in sorted(self._in)},
            "fan_out": {name: len(self._out[name]) for name in sorted(self._out)},
            "max_depth": self._max_depth(),
            "reused_entries": sum(1 for e in self.catalog.entries() if e.reused),
            "avg_arrays_per_operation": (
                sum(touched) / len(touched) if touched else 0.0
            ),
        }

    def _max_depth(self) -> Optional[int]:
        """Longest path length (in hops) through the lineage DAG, or
        ``None`` when a cycle makes depth undefined."""
        indegree = {name: len(self._in[name]) for name in self._out}
        queue = deque(name for name, degree in indegree.items() if degree == 0)
        depth = {name: 0 for name in queue}
        seen = 0
        longest = 0
        while queue:
            node = queue.popleft()
            seen += 1
            for neighbor in self._out[node]:
                candidate = depth[node] + 1
                if candidate > depth.get(neighbor, -1):
                    depth[neighbor] = candidate
                    longest = max(longest, candidate)
                indegree[neighbor] -= 1
                if indegree[neighbor] == 0:
                    queue.append(neighbor)
        if seen != len(self._out):
            return None  # cycle: some nodes never reached indegree zero
        return longest
