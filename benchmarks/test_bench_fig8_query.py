"""Benchmark for Figure 8: query latency over the image / relational / ResNet workflows.

DSLog's in-situ θ-joins are benchmarked against the decode+join baselines on
the same workflow and query cells; the assertion at the end checks the
paper's qualitative claim (DSLog at or below the baselines except possibly
on the most selective image queries).
"""

import pytest

from repro.baselines.stores import ColumnarStore, RawStore, TurboRCStore
from repro.experiments.fig8_query_latency import query_cells_for_selectivity
from repro.workloads.pipelines import image_pipeline, relational_pipeline, resnet_block_pipeline

PIPELINES = {
    "image": lambda: image_pipeline(64, 64, lime_samples=40),
    "relational": lambda: relational_pipeline(800, 500),
    "resnet": lambda: resnet_block_pipeline(24, 24),
}
SELECTIVITY = 0.05


def _query_cells(pipeline):
    return query_cells_for_selectivity(pipeline.first_shape, SELECTIVITY, seed=1)


@pytest.mark.parametrize("workflow", sorted(PIPELINES))
def test_dslog_query_latency(benchmark, workflow):
    pipeline = PIPELINES[workflow]()
    log = pipeline.load_into_dslog()
    cells = _query_cells(pipeline)
    result = benchmark(lambda: log.prov_query(pipeline.path, cells).count_cells())
    benchmark.extra_info["workflow"] = workflow
    benchmark.extra_info["result_cells"] = result


@pytest.mark.parametrize("workflow", sorted(PIPELINES))
@pytest.mark.parametrize("store_cls", [RawStore, ColumnarStore, TurboRCStore], ids=lambda c: c.name)
def test_baseline_query_latency(benchmark, workflow, store_cls):
    pipeline = PIPELINES[workflow]()
    db = pipeline.load_into_baseline(store_cls())
    cells = _query_cells(pipeline)
    result = benchmark(lambda: len(db.query_path(pipeline.path, cells)))
    benchmark.extra_info["workflow"] = workflow
    benchmark.extra_info["result_cells"] = result


@pytest.mark.parametrize("workflow", ["resnet"])
def test_array_baseline_query_latency(benchmark, workflow):
    pipeline = PIPELINES[workflow]()
    db = pipeline.load_into_array_db()
    cells = _query_cells(pipeline)
    result = benchmark(lambda: len(db.query_path(pipeline.path, cells)))
    benchmark.extra_info["workflow"] = workflow
    benchmark.extra_info["result_cells"] = result
