"""Benchmark for Table X: workflow-trace generation and compressibility classification."""

from repro.experiments.table10_workflows import run as run_table10


def test_table10_workflow_coverage(benchmark):
    results = benchmark(lambda: run_table10(n_workflows=20))
    total = results["Total"]
    benchmark.extra_info["compressible_pct_mean"] = round(total["compressible_pct"][0], 1)
    benchmark.extra_info["longest_chain_mean"] = round(total["longest_chain"][0], 1)
    # Table X ballpark: ~60-80% compressible, chains of ~10-25 operations.
    assert 55 <= total["compressible_pct"][0] <= 90
    assert 5 <= total["longest_chain"][0] <= 45
