"""Binary RPC vs HTTP round-trip throughput: the transport-tier gate.

One :class:`DualServer` serves the same catalog over both transports from
one shared ``ServiceCore`` with the result cache *disabled*, so every
round trip re-runs the θ-join chain — the measured difference is pure
transport cost: per-request HTTP header parsing and numpy → list → JSON
double-encoding on one side, persistent pooled sockets, binary frames
and ``np.frombuffer`` zero-copy hydration on the other.  Everything runs
sequentially on single connections, so the numbers are single-core-safe:
no thread fan-out, no cache luck, just the same work carried by two
protocols.

Three throughput measurements over the same query mix (two box-shipping
shapes, a cell listing and a small scattered probe — the serving
patterns the ROADMAP's distributed-catalog item cares about), plus an
informational multi-hop chain round trip on each transport:

* **http_qps** — the keep-alive :class:`LineageClient`, one request per
  round trip (HTTP/1.1 without pipelining, i.e. its best sequential form);
* **rpc_qps** — :class:`RPCClient.prov_query`, one frame per round trip;
* **rpc_pipelined_qps** — :meth:`RPCClient.prov_query_pipelined`, the
  whole mix in flight on one socket per pass.  Request-id pipelining is
  a designed-in property of the frame header; HTTP/1.1 has no usable
  equivalent, so this is the protocol's actual throughput form.

Gate: pipelined RPC ≥ 2× HTTP queries/second (``BENCH_RPC_MIN_SPEEDUP``
overrides); the sequential RPC speedup is recorded alongside.
``benchmarks/BENCH_post_rpc.json`` records the numbers captured when the
RPC tier landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_rpc.py \
        --benchmark-json=BENCH_current.json
"""

import os
import time

from repro import DSLog, LineageClient
from repro.core.relation import LineageRelation
from repro.service.rpc import DualServer, RPCClient

SHAPE = (32, 32)
HOPS = 2
ROUNDS = 12
PING_PROBES = 50

_results = {}
_dirs = iter(range(1_000_000))  # fresh catalog dir per (re-)invocation


def scatter(in_name, out_name):
    """Each output cell reads itself plus two wrap-around neighbors, so
    the compressed table keeps enough rows for a real θ-join and the
    unmerged result set stays box-heavy."""
    rows, cols = SHAPE
    pairs = []
    for i in range(rows):
        for j in range(cols):
            pairs.append(((i, j), (i, j)))
            pairs.append(((i, j), ((i + 1) % rows, j)))
            pairs.append(((i, j), (i, (j + 1) % cols)))
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def chain_arrays():
    return [f"a{i}" for i in range(HOPS + 1)]


def build_catalog(root):
    log = DSLog(root, backend="sharded", num_shards=4, autosync=False)
    names = chain_arrays()
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=scatter(a, b))
    log.sync()
    return log


def build_mix():
    """The per-round request mix — each entry is a query body dict."""
    names = chain_arrays()
    rows, cols = SHAPE
    one_hop = names[:2]
    return [
        # box-heavy: raw (unmerged) boxes for a full-array slice — the
        # marshalling volume the binary result payload attacks
        {"path": one_hop, "slices": [[0, rows], [0, cols]], "merge": False},
        # cell-heavy: an explicit per-cell listing of the full array
        {
            "path": one_hop,
            "slices": [[0, rows], [0, cols]],
            "include_cells": True,
        },
        # box-heavy again at a different shape: half the rows, unmerged
        {
            "path": one_hop,
            "slices": [[0, rows // 2], [0, cols]],
            "merge": False,
        },
        # small scattered query: fixed per-request overhead dominates
        {"path": one_hop, "cells": [[1, 1], [5, 9], [12, 3]]},
    ]


def mix_pass(prov_query, mix):
    """One sequential pass of the mix; returns (wall seconds, cells)."""
    total = 0
    start = time.monotonic()
    for request in mix:
        request = dict(request)
        path = request.pop("path")
        total += prov_query(path, **request)["count"]
    return time.monotonic() - start, total


def pipelined_pass(client, mix):
    """One pass with the whole mix in flight on one connection."""
    total = 0
    start = time.monotonic()
    for result in client.prov_query_pipelined(mix, window=len(mix)):
        total += result["count"]
    return time.monotonic() - start, total


def measure(root):
    """The full measurement: both transports, one uncached core.

    The three forms are timed in interleaved per-pass blocks (HTTP,
    then sequential RPC, then pipelined RPC, repeated ROUNDS times) so
    slow environmental drift — CPU frequency, GC, a noisy CI neighbor —
    lands on all of them evenly instead of biasing whichever transport
    happened to run last.
    """
    log = build_catalog(root)
    mix = build_mix()
    chain = {"path": chain_arrays(), "slices": [[0, SHAPE[0] // 2], [0, SHAPE[1] // 2]]}
    with DualServer(log, cache_entries=0) as dual:
        http = LineageClient.connect(dual.url, timeout=30.0)
        rpc = RPCClient.connect(dual.rpc_address, timeout=30.0)
        # warm the table caches and both connections, unmeasured
        mix_pass(http.prov_query, mix)
        mix_pass(rpc.prov_query, mix)
        pipelined_pass(rpc, mix)
        http_wall = rpc_wall = pipelined_wall = 0.0
        http_total = rpc_total = pipelined_total = 0
        for _ in range(ROUNDS):
            wall, cells = mix_pass(http.prov_query, mix)
            http_wall += wall
            http_total += cells
            wall, cells = mix_pass(rpc.prov_query, mix)
            rpc_wall += wall
            rpc_total += cells
            wall, cells = pipelined_pass(rpc, mix)
            pipelined_wall += wall
            pipelined_total += cells
        # all three runs must have carried identical answers
        assert http_total == rpc_total == pipelined_total, (
            http_total, rpc_total, pipelined_total,
        )
        queries = ROUNDS * len(mix)
        # informational: a real multi-hop chain round trip per transport
        chain_http_ms, chain_count = mix_pass(http.prov_query, [chain] * 8)
        chain_rpc_ms, chain_count_rpc = mix_pass(rpc.prov_query, [chain] * 8)
        assert chain_count == chain_count_rpc
        # connection-overhead floor: empty-payload round trips
        start = time.monotonic()
        for _ in range(PING_PROBES):
            rpc.ping()
        rpc_ping_ms = (time.monotonic() - start) / PING_PROBES * 1000
        start = time.monotonic()
        for _ in range(PING_PROBES):
            http.healthz()
        http_ping_ms = (time.monotonic() - start) / PING_PROBES * 1000
        http.close()
        rpc.close()
    log.close()
    return {
        "queries_per_round": len(mix),
        "cells_per_pass": http_total // ROUNDS,
        "http_qps": queries / http_wall,
        "rpc_qps": queries / rpc_wall,
        "rpc_pipelined_qps": queries / pipelined_wall,
        "rpc_speedup": http_wall / rpc_wall,
        "rpc_pipelined_speedup": http_wall / pipelined_wall,
        "chain_http_ms": chain_http_ms / 8 * 1000,
        "chain_rpc_ms": chain_rpc_ms / 8 * 1000,
        "http_ping_ms": http_ping_ms,
        "rpc_ping_ms": rpc_ping_ms,
    }


def min_speedup():
    return float(os.environ.get("BENCH_RPC_MIN_SPEEDUP", "2.0"))


# ----------------------------------------------------------------------
# RPC vs HTTP round-trip throughput
# ----------------------------------------------------------------------
def test_bench_rpc_roundtrip(benchmark, tmp_path):
    def run():
        result = measure(tmp_path / f"rpc-db{next(_dirs)}")
        _results["rpc"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)


def test_rpc_at_least_2x_http_uncached(tmp_path):
    """Acceptance criterion: the binary RPC tier carries the uncached
    query mix ≥ 2× faster than HTTP-JSON on the same single-threaded
    core, each transport in its best sequential form (keep-alive for
    HTTP, request-id pipelining for RPC) — the transport must cost less
    than the query it carries."""
    result = _results.get("rpc")
    if result is None:
        result = measure(tmp_path / "db")
    threshold = min_speedup()
    speedup = result["rpc_pipelined_speedup"]
    assert speedup >= threshold, (
        f"pipelined RPC only {speedup:.2f}x HTTP uncached "
        f"({result['rpc_pipelined_qps']:.0f} vs {result['http_qps']:.0f} qps; "
        f"sequential RPC {result['rpc_speedup']:.2f}x)"
    )
    # the one-frame-per-round-trip path must itself never lose to HTTP
    assert result["rpc_speedup"] >= 1.0, (
        f"sequential RPC slower than HTTP: {result['rpc_speedup']:.2f}x"
    )
