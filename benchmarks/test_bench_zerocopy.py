"""Zero-copy storage fast-path benchmarks: cold hydration, uncached query
throughput, in-memory footprint, and group-commit write coalescing.

The catalog mixes the two hydration regimes:

* a long chain of **small** tables — per-table overhead (file opens, JSON
  headers, buffer copies) dominates, which is where the cached mmap
  readers and the removed ``astype(int64)``/slice copies pay off;
* a handful of **wide** tables (tens of thousands of compressed rows) —
  memory bandwidth dominates, which is where narrow-dtype views (int16
  instead of int64, 4× fewer bytes) pay off.

Machine-independent gates live next to the timings:

* hydrated tables must come back at their stored narrow dtypes, and the
  table cache must charge ≤ 40% of the int64-inflated footprint;
* a bulk ingest synced once must coalesce its appends into a handful of
  OS writes (records-per-write ≥ 20).

``benchmarks/BENCH_post_zerocopy.json`` records the numbers captured when
the fast path landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_zerocopy.py \
        --benchmark-json=BENCH_current.json
"""

import numpy as np
import pytest

from repro import DSLog
from repro.core.relation import LineageRelation

CHAIN_ENTRIES = 400
CHAIN_SHAPE = (8,)
WIDE_ENTRIES = 4
WIDE_ROWS = 30_000
WIDE_SHAPE = (WIDE_ROWS,)


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def scrambled(shape, in_name, out_name, seed):
    """A permutation relation with no run structure: ProvRC keeps ~one row
    per cell, so the table is wide and hydration is bandwidth-bound."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(shape[0])
    pairs = [((int(i),), (int(perm[i]),)) for i in range(shape[0])]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def build_catalog(root):
    log = DSLog(root=root, backend="segment", autosync=False)
    chain = [f"C{i:04d}" for i in range(CHAIN_ENTRIES + 1)]
    for name in chain:
        log.define_array(name, CHAIN_SHAPE)
    for a, b in zip(chain, chain[1:]):
        log.add_lineage(a, b, relation=elementwise(CHAIN_SHAPE, a, b), op_name=f"op_{a}")
    wide = [f"W{i}" for i in range(WIDE_ENTRIES + 1)]
    for name in wide:
        log.define_array(name, WIDE_SHAPE)
    for i, (a, b) in enumerate(zip(wide, wide[1:])):
        log.add_lineage(a, b, relation=scrambled(WIDE_SHAPE, a, b, seed=i), op_name=f"wop_{i}")
    log.close()
    return chain, wide


@pytest.fixture(scope="session")
def zerocopy_db(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_zerocopy") / "db"
    chain, wide = build_catalog(root)
    return root, chain, wide


N_TABLES = 2 * (CHAIN_ENTRIES + WIDE_ENTRIES)


def int64_inflated_nbytes(table):
    """What the table would occupy had hydration upcast every interval
    column to int64 (the pre-zero-copy behavior)."""
    total = table.val_kind.nbytes + table.val_ref.nbytes
    for name in ("key_lo", "key_hi", "val_lo", "val_hi"):
        total += getattr(table, name).size * 8
    return total


def test_bench_cold_hydration(benchmark, zerocopy_db):
    """Cold open + materialize every table through the mmap fast path."""
    root, _chain, _wide = zerocopy_db

    def hydrate():
        log = DSLog.load(root)
        count = log.catalog.materialize_all()
        assert count == N_TABLES
        return log

    log = benchmark.pedantic(hydrate, rounds=3, warmup_rounds=1)
    benchmark.extra_info["tables"] = N_TABLES
    benchmark.extra_info["cache_bytes"] = log.store.cache.stats()["bytes"]
    benchmark.extra_info.update(log.store.reader_stats())
    log.close()


def test_bench_uncached_query_path(benchmark, zerocopy_db):
    """Multi-hop queries with the table cache cleared each round: every hop
    pays hydration (mmap read + narrow views) plus the θ-join chain."""
    root, chain, wide = zerocopy_db
    log = DSLog.load(root)
    paths = [chain[40:48], chain[200:208], list(reversed(chain[100:106])), wide[:3]]

    def query_cold():
        log.store.cache.clear()
        log._path_cache.clear()  # holds resolved table objects, not bytes
        hits = 0
        for path in paths:
            result = log.prov_query(path, [(3,)])
            hits += result.count_cells()
        assert hits >= len(paths)
        return hits

    benchmark.pedantic(query_cold, rounds=5, warmup_rounds=1)
    benchmark.extra_info["paths"] = len(paths)
    benchmark.extra_info["tables_deserialized"] = log.store.tables_deserialized
    log.close()


def test_hydration_preserves_narrow_dtypes(zerocopy_db):
    root, chain, wide = zerocopy_db
    log = DSLog.load(root)
    small = log.catalog.entry(chain[0], chain[1]).backward
    assert small.key_lo.dtype == np.int8
    big = log.catalog.entry(wide[0], wide[1]).backward
    assert big.key_lo.dtype == np.int16  # 30k rows: indices fit int16
    assert not big.key_lo.flags.writeable
    log.close()


def test_cache_charges_narrow_footprint(zerocopy_db):
    """Acceptance criterion: the in-memory footprint of hydrated tables is
    the narrow on-disk width, not the int64 inflation — machine-independent
    and gated at ≤ 40% (int16-dominated wide tables alone give 4×)."""
    root, _chain, _wide = zerocopy_db
    log = DSLog.load(root)
    log.catalog.materialize_all()
    charged = log.store.cache.stats()["bytes"]
    inflated = sum(
        int64_inflated_nbytes(entry.backward) + int64_inflated_nbytes(entry.forward)
        for entry in log.catalog.entries()
    )
    ratio = charged / inflated
    assert ratio <= 0.40, (
        f"hydrated footprint is {charged} bytes = {ratio:.0%} of the int64 "
        f"inflation ({inflated}); the zero-copy path should stay under 40%"
    )
    log.close()


def test_group_commit_coalescing_gate(tmp_path):
    """Acceptance criterion: a bulk ingest synced once reaches the OS as a
    handful of coalesced writes — records-per-write ≥ 20 (deterministic:
    wait overlap, not parallelism, so it holds on a 1-CPU runner)."""
    log = DSLog(root=tmp_path / "db", backend="segment", autosync=False)
    names = [f"A{i}" for i in range(201)]
    for name in names:
        log.define_array(name, CHAIN_SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(CHAIN_SHAPE, a, b))
    log.sync()
    stats = log.store.write_stats()
    assert stats["coalesced_records"] >= 400  # 200 entries x 2 orientations
    per_write = stats["coalesced_records"] / max(stats["coalesced_writes"], 1)
    assert per_write >= 20, (
        f"only {per_write:.1f} records per OS write "
        f"({stats['coalesced_records']} records in {stats['coalesced_writes']} writes)"
    )
    log.close()
