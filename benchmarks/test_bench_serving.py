"""Serving-tier benchmark: result-cache QPS and parallel shard fan-out.

Three measurements over the same query mix (multi-hop path queries across
independent lineage chains, spread over the shards by the crc32 pair
router):

* **cached vs uncached QPS** — a generation-keyed :class:`ResultCache` in
  front of the executor vs the same executor with the cache disabled (the
  table cache stays warm in both: this isolates the *result* cache win);
* **parallel fan-out** — ``max_workers=4`` vs the sequential executor on a
  cold table cache at 4 and 8 shards, so per-shard segment reads, gunzips
  and θ-join chains overlap;
* **HTTP round trip** — end-to-end ``LineageClient``→``LineageServer``
  QPS on a cache-hot query, i.e. the serving tier's protocol overhead.

Gates: cached reads must beat uncached by ≥ 5× everywhere (a cache hit is
a digest + dict probe; no hardware can make that slower than a θ-join
chain).  The fan-out speedup gate (≥ 1.5× at 4 shards) needs actual cores
— on fewer than 4 the number is recorded in the JSON but the assertion is
skipped with the reason, mirroring the concurrent-ingest gate's scaling
(``BENCH_SERVING_MIN_FANOUT`` overrides).

``benchmarks/BENCH_post_serving.json`` records the numbers captured when
the serving tier landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serving.py \
        --benchmark-json=BENCH_current.json
"""

import os
import time

import pytest

from repro import DSLog, LineageClient
from repro.core.relation import LineageRelation
from repro.service.query import QueryExecutor

SHAPE = (24, 24)
LANES = 4  # independent chains, queried concurrently by the mix
HOPS = 4  # path length per lane
CACHE_ROUNDS = 6
FANOUT_ROUNDS = 3
PARALLEL_WORKERS = 4

_results = {}
_dirs = iter(range(1_000_000))  # fresh catalog dir per (re-)invocation


def scatter(in_name, out_name):
    """Each output cell reads itself plus two wrap-around neighbors: the
    modular wrap breaks pure box structure, so the compressed table keeps
    enough rows for the θ-join to do real work."""
    rows, cols = SHAPE
    pairs = []
    for i in range(rows):
        for j in range(cols):
            pairs.append(((i, j), (i, j)))
            pairs.append(((i, j), ((i + 1) % rows, j)))
            pairs.append(((i, j), (i, (j + 1) % cols)))
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def lane_arrays(lane):
    return [f"lane{lane}_a{i}" for i in range(HOPS + 1)]


def build_catalog(root, num_shards):
    log = DSLog(root, backend="sharded", num_shards=num_shards, autosync=False)
    for lane in range(LANES):
        names = lane_arrays(lane)
        for name in names:
            log.define_array(name, SHAPE)
        for a, b in zip(names, names[1:]):
            log.add_lineage(a, b, relation=scatter(a, b))
    log.sync()
    return log


def build_mix():
    """The query mix: full-chain forward, backward and scattered-cell
    queries for every lane (3 × LANES requests)."""
    mix = []
    for lane in range(LANES):
        names = lane_arrays(lane)
        mix.append((names, [slice(0, 8), slice(0, 8)]))
        mix.append((list(reversed(names)), [(1, 1), (5, 9), (12, 3)]))
        mix.append((names, [(2, 2), (7, 17), (20, 5), (11, 11)]))
    return mix


def clear_table_caches(log):
    for shard in log.store.shards:
        shard.cache.clear()


def time_mix(log, mix, max_workers, rounds, cache_entries=0, cold=False):
    """Wall-time *rounds* passes of the mix; returns queries per second."""
    with QueryExecutor(log, max_workers=max_workers, cache_entries=cache_entries) as ex:
        if cache_entries:
            ex.map_queries(mix)  # prime the result cache once, unmeasured
        start = time.monotonic()
        for _ in range(rounds):
            if cold:
                clear_table_caches(log)
            ex.map_queries(mix)
        wall = time.monotonic() - start
    return rounds * len(mix) / wall


def fanout_threshold():
    override = os.environ.get("BENCH_SERVING_MIN_FANOUT")
    if override:
        return float(override)
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.5
    return None  # fewer cores than the fan-out width: record, don't gate


# ----------------------------------------------------------------------
# cached vs uncached QPS
# ----------------------------------------------------------------------
def test_bench_serving_cache(benchmark, tmp_path):
    def run():
        log = build_catalog(tmp_path / f"cache-db{next(_dirs)}", 4)
        mix = build_mix()
        log.prov_query(lane_arrays(0), [(1, 1)])  # warm the table cache
        uncached_qps = time_mix(log, mix, max_workers=1, rounds=CACHE_ROUNDS)
        cached_qps = time_mix(
            log, mix, max_workers=1, rounds=CACHE_ROUNDS, cache_entries=512
        )
        log.close()
        result = {
            "queries_per_round": len(mix),
            "uncached_qps": uncached_qps,
            "cached_qps": cached_qps,
            "cache_speedup": cached_qps / uncached_qps,
        }
        _results["cache"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)


def test_cached_reads_at_least_5x_uncached(tmp_path):
    """Acceptance criterion: the generation-keyed result cache serves hot
    queries ≥ 5× faster than re-running the θ-join chains."""
    result = _results.get("cache")
    if result is None:
        log = build_catalog(tmp_path / "db", 4)
        mix = build_mix()
        result = {
            "uncached_qps": time_mix(log, mix, max_workers=1, rounds=CACHE_ROUNDS),
            "cached_qps": time_mix(
                log, mix, max_workers=1, rounds=CACHE_ROUNDS, cache_entries=512
            ),
        }
        log.close()
    speedup = result["cached_qps"] / result["uncached_qps"]
    assert speedup >= 5.0, (
        f"cached reads only {speedup:.1f}x uncached "
        f"({result['cached_qps']:.0f} vs {result['uncached_qps']:.0f} qps)"
    )


# ----------------------------------------------------------------------
# parallel shard fan-out
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_shards", [4, 8])
def test_bench_serving_fanout(benchmark, tmp_path, num_shards):
    def run():
        log = build_catalog(tmp_path / f"fanout-db{num_shards}-{next(_dirs)}", num_shards)
        mix = build_mix()
        seq_qps = time_mix(log, mix, max_workers=1, rounds=FANOUT_ROUNDS, cold=True)
        par_qps = time_mix(
            log, mix, max_workers=PARALLEL_WORKERS, rounds=FANOUT_ROUNDS, cold=True
        )
        log.close()
        result = {
            "num_shards": num_shards,
            "cpu_count": os.cpu_count(),
            "sequential_qps": seq_qps,
            "parallel_qps": par_qps,
            "fanout_speedup": par_qps / seq_qps,
        }
        _results[("fanout", num_shards)] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)


def test_fanout_speedup_gate(tmp_path):
    """Acceptance criterion: ≥ 1.5× over the sequential executor at 4
    shards — gated on having ≥ 4 usable cores, because thread fan-out of
    CPU-bound θ-joins cannot beat a single core's serial throughput."""
    threshold = fanout_threshold()
    if threshold is None:
        pytest.skip(
            f"only {os.cpu_count()} usable core(s): parallel fan-out has no "
            "hardware headroom here; speedup is recorded in the benchmark "
            "JSON and gated on multi-core runners"
        )
    result = _results.get(("fanout", 4))
    if result is None:
        log = build_catalog(tmp_path / "db", 4)
        mix = build_mix()
        result = {
            "sequential_qps": time_mix(log, mix, 1, FANOUT_ROUNDS, cold=True),
            "parallel_qps": time_mix(
                log, mix, PARALLEL_WORKERS, FANOUT_ROUNDS, cold=True
            ),
        }
        log.close()
    speedup = result["parallel_qps"] / result["sequential_qps"]
    assert speedup >= threshold, (
        f"4-shard parallel fan-out only {speedup:.2f}x the sequential executor "
        f"({result['parallel_qps']:.0f} vs {result['sequential_qps']:.0f} qps)"
    )


# ----------------------------------------------------------------------
# HTTP round trip
# ----------------------------------------------------------------------
def test_bench_http_roundtrip(benchmark, tmp_path):
    def run():
        log = build_catalog(tmp_path / f"http-db{next(_dirs)}", 4)
        server = log.serve(port=0)
        client = LineageClient.connect(server.url, timeout=10.0)
        path = lane_arrays(0)
        cells = [[1, 1], [5, 9]]
        client.prov_query(path, cells=cells)  # prime the result cache
        n = 50
        start = time.monotonic()
        for _ in range(n):
            payload = client.prov_query(path, cells=cells, include_boxes=False)
        wall = time.monotonic() - start
        assert payload["cached"] is True
        server.close()
        log.close()
        result = {"http_qps": n / wall, "mean_roundtrip_ms": wall / n * 1000}
        _results["http"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)
