"""Benchmark for Figure 9: query latency on random numpy workflows (5 and 10 ops)."""

import pytest

from repro.baselines.stores import ColumnarStore, RawStore
from repro.experiments.fig8_query_latency import query_cells_for_selectivity
from repro.workloads.pipelines import random_numpy_pipeline

N_CELLS = 20_000
QUERY_CELLS = 200
CHAIN_LENGTHS = [5, 10]


def _setup(length, seed=11):
    pipeline = random_numpy_pipeline(length, n_cells=N_CELLS, seed=seed)
    cells = query_cells_for_selectivity(pipeline.first_shape, QUERY_CELLS / N_CELLS, seed=seed)
    return pipeline, cells


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_dslog_random_workflow(benchmark, length):
    pipeline, cells = _setup(length)
    log = pipeline.load_into_dslog()
    result = benchmark(lambda: log.prov_query(pipeline.path, cells).count_cells())
    benchmark.extra_info["chain_length"] = length
    benchmark.extra_info["result_cells"] = result


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_dslog_nomerge_random_workflow(benchmark, length):
    pipeline, cells = _setup(length)
    log = pipeline.load_into_dslog()
    result = benchmark(lambda: log.prov_query(pipeline.path, cells, merge=False).count_cells())
    benchmark.extra_info["chain_length"] = length
    benchmark.extra_info["result_cells"] = result


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
@pytest.mark.parametrize("store_cls", [RawStore, ColumnarStore], ids=lambda c: c.name)
def test_baseline_random_workflow(benchmark, length, store_cls):
    pipeline, cells = _setup(length)
    db = pipeline.load_into_baseline(store_cls())
    result = benchmark(lambda: len(db.query_path(pipeline.path, cells)))
    benchmark.extra_info["chain_length"] = length
    benchmark.extra_info["result_cells"] = result
