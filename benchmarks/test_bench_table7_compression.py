"""Benchmark for Table VII: compression size per format for every operation.

Run with ``pytest benchmarks/ --benchmark-only``.  The measured quantity is
the end-to-end encode cost per format; the printed extra info carries the
size comparison that reproduces the table (who compresses what, by how
much), which is the paper's actual claim.
"""

import pytest

from repro.baselines.stores import all_baseline_stores
from repro.experiments.common import provrc_bytes
from repro.experiments.table7_compression import run as run_table7
from repro.workloads.operations import build_workload, compression_workloads

SCALE = 0.05
OPERATIONS = sorted(compression_workloads())


@pytest.mark.parametrize("operation", OPERATIONS)
def test_provrc_compression_size(benchmark, operation):
    """ProvRC encode latency + size ratio vs Raw for one Table VII operation."""
    relations = build_workload(operation, scale=SCALE)
    raw_bytes = sum(all_baseline_stores()["Raw"].size_bytes(rel.rows) for rel in relations)

    compressed_bytes = benchmark(provrc_bytes, relations)

    benchmark.extra_info["operation"] = operation
    benchmark.extra_info["raw_bytes"] = raw_bytes
    benchmark.extra_info["provrc_bytes"] = compressed_bytes
    benchmark.extra_info["ratio_percent"] = 100.0 * compressed_bytes / raw_bytes
    assert compressed_bytes > 0


@pytest.mark.parametrize("fmt", ["Raw", "Parquet", "Parquet-GZip", "Turbo-RC"])
def test_baseline_compression_size(benchmark, fmt):
    """Baseline encode latency on the Negative workload (reference point)."""
    relations = build_workload("Negative", scale=SCALE)
    store = all_baseline_stores()[fmt]

    total = benchmark(lambda: sum(store.size_bytes(rel.rows) for rel in relations))
    benchmark.extra_info["format"] = fmt
    benchmark.extra_info["bytes"] = total


def test_full_table7_harness(benchmark):
    """One full Table VII sweep at reduced scale (all formats, all operations)."""
    results = benchmark.pedantic(run_table7, kwargs={"scale": 0.02}, rounds=1, iterations=1)
    structured = ["Negative", "Aggregate", "Matrix*Vector", "Matrix*Matrix", "Repetition"]
    for op in structured:
        assert results[op]["ProvRC"] < results[op]["Raw"] / 100
    benchmark.extra_info["operations"] = len(results)
