"""Batched query execution benchmark: one θ-join pass for many queries.

Two measurements over the same 64-query batch (single-cell backward
queries down a 4-hop scatter chain, all sharing one resolved path):

* **batched vs sequential uncached QPS** — ``prov_query_batch`` runs the
  whole batch as one blocked kernel pass per hop with per-query offset
  segmentation, vs the same executor answering the 64 queries one at a
  time (result cache off in both, table cache warm in both: this isolates
  the cross-query amortization win, not caching or I/O);
* **HTTP batch round trip** — ``LineageClient.prov_query_batch`` vs 64
  individual ``/query`` round trips against a live server.

Gate: batched execution must beat sequential by ≥ 2× at batch 64.  The
kernel amortizes numpy dispatch and per-query planning on a single core —
no parallelism involved — so the gate holds on 1-core runners too
(``BENCH_BATCH_MIN_SPEEDUP`` overrides).  Batched results are asserted
bit-identical to the ``_reference.py`` loop-over-queries oracle before any
timing is recorded.

``benchmarks/BENCH_post_batch.json`` records the numbers captured when
batched execution landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_batch.py \
        --benchmark-json=BENCH_current.json
"""

import os
import time

import numpy as np

from repro import DSLog, LineageClient
from repro.core._reference import execute_path_batch_reference
from repro.core.query import execute_path_batch
from repro.core.relation import LineageRelation
from repro.service.query import QueryExecutor

SHAPE = (12, 12)  # point-query serving: small per-query kernel work
HOPS = 4
BATCH = 64
ROUNDS = 4
HTTP_ROUNDS = 2

_results = {}
_dirs = iter(range(1_000_000))  # fresh catalog dir per (re-)invocation


def scatter(in_name, out_name):
    """Each output cell reads itself plus two wrap-around neighbors (the
    same shape the serving benchmark uses, scaled down to point-query
    size): the modular wrap breaks pure box structure so the θ-join does
    real interval work per hop."""
    rows, cols = SHAPE
    pairs = []
    for i in range(rows):
        for j in range(cols):
            pairs.append(((i, j), (i, j)))
            pairs.append(((i, j), ((i + 1) % rows, j)))
            pairs.append(((i, j), (i, (j + 1) % cols)))
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def chain_arrays():
    return [f"batch_a{i}" for i in range(HOPS + 1)]


def build_catalog(root):
    log = DSLog(root, backend="sharded", num_shards=4, autosync=False)
    names = chain_arrays()
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=scatter(a, b))
    log.sync()
    return log


def build_batch():
    """BATCH single-cell backward queries down the full chain: one resolved
    path, 64 distinct query boxes — the shape request coalescing produces
    under load."""
    path = list(reversed(chain_arrays()))
    rows, cols = SHAPE
    requests = []
    for k in range(BATCH):
        cell = ((k * 7) % rows, (k * 13) % cols)
        requests.append((path, [cell]))
    return requests


def assert_batch_matches_oracle(ex, requests):
    """Pin the acceptance criterion before timing anything: the batched
    kernel's boxes are bit-identical to the loop-over-queries oracle."""
    path = list(requests[0][0])
    tables = ex._resolve_tables(path)
    box_sets = [ex.log._as_box_set(path[0], cells) for _, cells in requests]
    got = execute_path_batch(tables, box_sets)
    want = execute_path_batch_reference(tables, box_sets)
    for g, w in zip(got, want):
        assert g.cells.array_name == w.cells.array_name
        assert np.array_equal(g.cells.lo, w.cells.lo)
        assert np.array_equal(g.cells.hi, w.cells.hi)


def time_sequential(ex, requests, rounds):
    start = time.monotonic()
    for _ in range(rounds):
        for path, cells in requests:
            ex.prov_query(path, cells)
    wall = time.monotonic() - start
    return rounds * len(requests) / wall


def time_batched(ex, requests, rounds):
    start = time.monotonic()
    for _ in range(rounds):
        ex.prov_query_batch(requests)
    wall = time.monotonic() - start
    return rounds * len(requests) / wall


def batch_threshold():
    override = os.environ.get("BENCH_BATCH_MIN_SPEEDUP")
    if override:
        return float(override)
    return 2.0  # single-core-safe: batching amortizes overhead, not cores


# ----------------------------------------------------------------------
# batched vs sequential uncached QPS
# ----------------------------------------------------------------------
def test_bench_batch_vs_sequential(benchmark, tmp_path):
    def run():
        log = build_catalog(tmp_path / f"batch-db{next(_dirs)}")
        requests = build_batch()
        with QueryExecutor(log, max_workers=1, cache_entries=0) as ex:
            assert_batch_matches_oracle(ex, requests)
            ex.prov_query_batch(requests)  # warm the table cache, unmeasured
            sequential_qps = time_sequential(ex, requests, ROUNDS)
            batched_qps = time_batched(ex, requests, ROUNDS)
        log.close()
        result = {
            "batch_size": BATCH,
            "cpu_count": os.cpu_count(),
            "sequential_qps": sequential_qps,
            "batched_qps": batched_qps,
            "batch_speedup": batched_qps / sequential_qps,
        }
        _results["batch"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)


def test_batch_speedup_gate(tmp_path):
    """Acceptance criterion: one batched kernel pass answers 64 uncached
    queries ≥ 2× faster than the same executor answering them one at a
    time."""
    threshold = batch_threshold()
    result = _results.get("batch")
    if result is None:
        log = build_catalog(tmp_path / "db")
        requests = build_batch()
        with QueryExecutor(log, max_workers=1, cache_entries=0) as ex:
            ex.prov_query_batch(requests)
            result = {
                "sequential_qps": time_sequential(ex, requests, ROUNDS),
                "batched_qps": time_batched(ex, requests, ROUNDS),
            }
        log.close()
    speedup = result["batched_qps"] / result["sequential_qps"]
    assert speedup >= threshold, (
        f"batch-{BATCH} execution only {speedup:.2f}x sequential "
        f"({result['batched_qps']:.0f} vs {result['sequential_qps']:.0f} qps)"
    )


# ----------------------------------------------------------------------
# HTTP batch round trip
# ----------------------------------------------------------------------
def test_bench_http_batch(benchmark, tmp_path):
    def run():
        log = build_catalog(tmp_path / f"http-batch-db{next(_dirs)}")
        requests = build_batch()
        server = log.serve(port=0, max_workers=1, cache_entries=0)
        client = LineageClient.connect(server.url, timeout=30.0)
        queries = [(path, cells) for path, cells in requests]
        client.prov_query_batch(queries, include_boxes=False)  # warm tables
        start = time.monotonic()
        for _ in range(HTTP_ROUNDS):
            for path, cells in requests:
                client.prov_query(path, cells=cells, include_boxes=False)
        single_wall = time.monotonic() - start
        start = time.monotonic()
        for _ in range(HTTP_ROUNDS):
            client.prov_query_batch(queries, include_boxes=False)
        batch_wall = time.monotonic() - start
        server.close()
        log.close()
        n = HTTP_ROUNDS * BATCH
        result = {
            "http_single_qps": n / single_wall,
            "http_batch_qps": n / batch_wall,
            "http_batch_speedup": single_wall / batch_wall,
        }
        _results["http"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)
