"""Ingest + reopen benchmarks for the segment-backed lineage store.

Builds a 1,000-entry chain catalog once per session, then measures:

* **ingest** — appending entries to segments with one manifest sync at the
  end (the bulk-load pattern, ``autosync=False``);
* **cold open (lazy)** — ``DSLog.load`` on the segment directory, which
  must be O(manifest): the run asserts that *zero* tables are deserialized;
* **first query after a cold open** — only the queried path's tables are
  materialized (5 of 2,000 here);
* **eager materialization** — the cost the lazy open avoids: loading every
  table of every entry, the moral equivalent of the legacy loader.

``benchmarks/BENCH_post_store.json`` records the numbers captured when the
store landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_store.py \
        --benchmark-json=BENCH_current.json
"""

import numpy as np
import pytest

from repro import DSLog
from repro.core.relation import LineageRelation

N_ENTRIES = 1_000
SHAPE = (8,)


def elementwise(shape, in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*shape)]
    return LineageRelation.from_pairs(pairs, shape, shape, in_name=in_name, out_name=out_name)


def build_chain(root, n):
    log = DSLog(root=root, backend="segment", autosync=False)
    names = [f"A{i:05d}" for i in range(n + 1)]
    for name in names:
        log.define_array(name, SHAPE)
    for a, b in zip(names, names[1:]):
        log.add_lineage(a, b, relation=elementwise(SHAPE, a, b), op_name=f"op_{a}")
    log.close()
    return names


@pytest.fixture(scope="session")
def chain_db(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_store") / "db"
    names = build_chain(root, N_ENTRIES)
    return root, names


def test_bench_segment_ingest(benchmark, tmp_path):
    """Bulk-load 200 entries into a fresh store (segments + one sync)."""
    counter = iter(range(1_000_000))

    def ingest():
        root = tmp_path / f"db{next(counter)}"
        build_chain(root, 200)

    benchmark.pedantic(ingest, rounds=3, warmup_rounds=1)
    benchmark.extra_info["entries"] = 200


def test_bench_cold_open_is_lazy(benchmark, chain_db):
    """Reopen the 1k-entry catalog: O(manifest), zero tables deserialized."""
    root, _names = chain_db

    def cold_open():
        log = DSLog.load(root)
        assert len(log.catalog) == N_ENTRIES
        assert log.store.tables_deserialized == 0
        return log

    log = benchmark.pedantic(cold_open, rounds=5, warmup_rounds=1)
    benchmark.extra_info["entries"] = N_ENTRIES
    benchmark.extra_info["tables_deserialized"] = log.store.tables_deserialized
    benchmark.extra_info["manifest_generation"] = log.store.manifest.generation


def test_bench_first_query_after_cold_open(benchmark, chain_db):
    """Cold open plus one 5-hop path query: loads 5 of 2,000 tables."""
    root, names = chain_db
    path = names[100:106]

    def open_and_query():
        log = DSLog.load(root)
        result = log.prov_query(path, [(3,)])
        assert result.to_cells() == {(3,)}
        return log

    log = benchmark.pedantic(open_and_query, rounds=5, warmup_rounds=1)
    benchmark.extra_info["entries"] = N_ENTRIES
    benchmark.extra_info["tables_deserialized"] = log.store.tables_deserialized


def test_bench_eager_materialize_all(benchmark, chain_db):
    """The eager-open cost the lazy path avoids: every table materialized."""
    root, _names = chain_db

    def open_eager():
        log = DSLog.load(root)
        count = log.catalog.materialize_all()
        assert count == 2 * N_ENTRIES
        return log

    log = benchmark.pedantic(open_eager, rounds=2, warmup_rounds=1)
    benchmark.extra_info["entries"] = N_ENTRIES
    benchmark.extra_info["tables_deserialized"] = log.store.tables_deserialized


def test_bench_planned_query_on_reopened_catalog(benchmark, chain_db):
    """Graph-planned two-array query (no hop list) over the 1k-hop chain."""
    root, names = chain_db
    log = DSLog.load(root)
    src, dst = names[200], names[220]

    result = benchmark.pedantic(
        lambda: log.prov_query([src, dst], [(5,)]), rounds=5, warmup_rounds=1
    )
    assert result.to_cells() == {(5,)}
    benchmark.extra_info["hops"] = 20
