"""Benchmark for Table IX: compression + reuse coverage sweep over the numpy catalog."""

from repro.experiments.table9_coverage import run as run_coverage


def test_table9_coverage_sweep(benchmark):
    tallies = benchmark.pedantic(
        run_coverage, kwargs={"runs": 4, "base_size": 200}, rounds=1, iterations=1
    )
    benchmark.extra_info["element_provrc"] = tallies["element"]["provrc"]
    benchmark.extra_info["complex_provrc"] = tallies["complex"]["provrc"]
    benchmark.extra_info["gen_sig_total"] = tallies["total"]["gen_sig"]
    benchmark.extra_info["errors"] = tallies["total"]["error"]
    # Table IX shape: every element-wise op compresses and generalizes;
    # complex coverage is lower but still a majority.
    assert tallies["element"]["provrc"] == tallies["element"]["total"]
    assert tallies["element"]["gen_sig"] == tallies["element"]["total"]
    assert tallies["complex"]["provrc"] >= tallies["complex"]["total"] // 2
    assert tallies["total"]["gen_sig"] < tallies["total"]["dim_sig"] + tallies["element"]["total"]
