"""Benchmark for Figure 7: compression latency vs input size per format.

Each benchmark case measures the end-to-end read/convert/compress latency
for one (lineage kind, format, size) point of the figure.
"""

import pytest

from repro.baselines.stores import all_baseline_stores
from repro.core.provrc import compress
from repro.core.serialize import serialize_compressed_gzip
from repro.experiments.fig7_compression_latency import _build_relation

SIZES = [10_000, 50_000]
KINDS = ["elementwise", "aggregate"]
FORMATS = ["Raw", "Parquet", "Parquet-GZip", "Turbo-RC", "ProvRC-GZip"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("fmt", FORMATS)
def test_compression_latency(benchmark, kind, size, fmt):
    relation = _build_relation(kind, size)
    stores = all_baseline_stores()

    if fmt == "ProvRC-GZip":
        payload = benchmark(lambda: serialize_compressed_gzip(compress(relation, key="output")))
    else:
        payload = benchmark(lambda: stores[fmt].encode(relation.rows))

    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["cells"] = size
    benchmark.extra_info["bytes"] = len(payload)
