"""Concurrent ingest throughput of the lineage service (1 / 4 / 8 writers).

Each *writer thread* plays a host pipeline doing durable in-situ capture:
it submits one operation and waits for its ticket (``submit().result()``),
i.e. every op is published — fsync'd segments + manifest swap — before the
writer moves on.  A single writer therefore pays one full group commit per
op, while concurrent writers share commits (the committer batches every op
applied during the publish window), which is exactly the effect this
benchmark quantifies:

* **ops/sec** at 1, 4 and 8 writer threads over a 4-shard catalog;
* **p99 submit latency** (the enqueue call: backpressure only) and
  **p99 durable latency** (submit → covered by a published generation);
* commit amortization (``avg_commit_batch``).

The final test asserts the acceptance criterion: ≥ 2× single-writer
ops/sec at 4 writers.  ``benchmarks/BENCH_post_service.json`` records the
numbers captured when the service landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_concurrent.py \
        --benchmark-json=BENCH_current.json
"""

import os
import threading
import time

import numpy as np
import pytest

from repro import DSLog, LineageService
from repro.core.relation import LineageRelation

SHAPE = (16,)
NUM_SHARDS = 4
WORKERS = 4
COMMIT_INTERVAL = 0.005
TOTAL_OPS = {1: 80, 4: 160, 8: 160}

_results = {}


def elementwise(in_name, out_name):
    pairs = [(cell, cell) for cell in np.ndindex(*SHAPE)]
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def _percentile(values, q):
    values = sorted(values)
    return values[min(len(values) - 1, int(len(values) * q))]


def run_ingest(writers, total_ops, root):
    """Durable multi-writer ingest; returns throughput + latency stats."""
    ops_per_writer = total_ops // writers
    service = LineageService(
        root,
        workers=WORKERS,
        num_shards=NUM_SHARDS,
        commit_interval=COMMIT_INTERVAL,
        queue_size=128,
    )
    for w in range(writers):
        for i in range(ops_per_writer + 1):
            service.define_array(f"w{w}a{i}", SHAPE)
    submit_lat = [[] for _ in range(writers)]
    durable_lat = [[] for _ in range(writers)]

    def writer(w):
        for i in range(ops_per_writer):
            a, b = f"w{w}a{i}", f"w{w}a{i+1}"
            relation = elementwise(a, b)
            start = time.monotonic()
            ticket = service.submit(
                f"op{w}_{i}", [a], [b], relations={(a, b): relation}, reuse=False
            )
            submit_lat[w].append(time.monotonic() - start)
            ticket.result(timeout=120)
            durable_lat[w].append(time.monotonic() - start)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(writers)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.monotonic() - start
    stats = service.stats()
    service.close()

    flat_submit = [x for lat in submit_lat for x in lat]
    flat_durable = [x for lat in durable_lat for x in lat]
    return {
        "writers": writers,
        "ops": writers * ops_per_writer,
        "ops_per_sec": writers * ops_per_writer / wall,
        "p99_submit_ms": _percentile(flat_submit, 0.99) * 1000,
        "p99_durable_ms": _percentile(flat_durable, 0.99) * 1000,
        "avg_commit_batch": stats["avg_commit_batch"],
        "commits": stats["commits"],
    }


@pytest.mark.parametrize("writers", [1, 4, 8])
def test_bench_concurrent_ingest(benchmark, tmp_path, writers):
    counter = iter(range(1_000_000))

    def ingest():
        result = run_ingest(writers, TOTAL_OPS[writers], tmp_path / f"db{next(counter)}")
        _results[writers] = result
        return result

    result = benchmark.pedantic(ingest, rounds=1, warmup_rounds=0)
    for key, value in result.items():
        benchmark.extra_info[key] = value


def min_concurrent_speedup():
    """The 4-writer speedup the gate demands, scaled to the runner.

    The speedup has two sources: group-commit amortization (writers share
    one fsync + manifest publish — works on any core count, it is *wait*
    overlap) and compression/serialization overlap (needs real cores).  On
    big machines both contribute and ≥ 2× is comfortably reproducible; on
    the 1–2 core runners CI sometimes hands out, only the commit sharing
    is guaranteed, so the hard assertion scales down instead of flaking.
    ``BENCH_CONCURRENT_MIN_SPEEDUP`` overrides for pinned environments.
    """
    override = os.environ.get("BENCH_CONCURRENT_MIN_SPEEDUP")
    if override:
        return float(override)
    cores = os.cpu_count() or 1
    return 2.0 if cores >= 4 else 1.5


def test_four_writers_at_least_2x_single_writer(tmp_path):
    """Acceptance criterion: ≥ 2× single-thread ops/sec at 4 writers
    (scaled down on small runners — see :func:`min_concurrent_speedup`).

    Uses the measurements of the parametrized benchmark above when they
    exist (plain ``pytest benchmarks``), otherwise measures both
    configurations directly.
    """
    single = _results.get(1) or run_ingest(1, TOTAL_OPS[1], tmp_path / "single")
    four = _results.get(4) or run_ingest(4, TOTAL_OPS[4], tmp_path / "four")
    speedup = four["ops_per_sec"] / single["ops_per_sec"]
    threshold = min_concurrent_speedup()
    assert four["avg_commit_batch"] > single["avg_commit_batch"]
    assert speedup >= threshold, (
        f"4-writer ingest only {speedup:.2f}x the single-writer rate "
        f"({four['ops_per_sec']:.0f} vs {single['ops_per_sec']:.0f} ops/s; "
        f"threshold {threshold}x for {os.cpu_count()} core(s))"
    )


def test_bench_sync_autosync_baseline(benchmark, tmp_path):
    """The status-quo path the service replaces: one synchronous
    ``register_operation`` + full-manifest autosync per op on the caller's
    thread (single-writer by construction)."""
    counter = iter(range(1_000_000))
    n = 40

    def ingest():
        log = DSLog(
            tmp_path / f"db{next(counter)}",
            backend="sharded",
            num_shards=NUM_SHARDS,
            autosync=True,
        )
        for i in range(n + 1):
            log.define_array(f"a{i}", SHAPE)
        start = time.monotonic()
        for i in range(n):
            a, b = f"a{i}", f"a{i+1}"
            log.register_operation(
                f"op{i}", [a], [b], relations={(a, b): elementwise(a, b)}, reuse=False
            )
        wall = time.monotonic() - start
        log.close()
        return {"ops_per_sec": n / wall}

    result = benchmark.pedantic(ingest, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(result)
