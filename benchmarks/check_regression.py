#!/usr/bin/env python
"""CI perf-regression gate: compare a fresh pytest-benchmark JSON run
against a committed ``BENCH_*.json`` baseline.

Each benchmark is matched by its ``fullname`` and compared on a stats
field (mean seconds by default); the job fails when

    fresh > baseline * tolerance

for any matched benchmark, or when a baseline benchmark is missing from
the fresh run (a silently dropped benchmark is a dead gate — pass
``--allow-missing`` for intentionally partial runs).  Benchmarks only in
the fresh run never fail: new benchmarks land before their baseline does.

The tolerance (default 1.5×) absorbs runner noise; CI passes a wider one
because the committed baselines were captured on a different machine
class than the hosted runners.  Ratio-style acceptance criteria (cached
≥ 5× uncached, fan-out ≥ 1.5×) live *inside* the benchmark suites, where
they are machine-independent; this gate guards absolute walltime drift.

Individual benchmarks may need a wider (or tighter) bound than the global
tolerance — e.g. a sub-millisecond benchmark whose mean is dominated by
scheduler noise on 1-CPU runners.  ``--tolerance-override PATTERN=FACTOR``
(repeatable) sets a per-benchmark factor: a pattern equal to a benchmark's
``fullname`` matches exactly; otherwise it matches as a substring, and
when several substring patterns match one benchmark the longest (most
specific) pattern wins.

Usage:
    python benchmarks/check_regression.py FRESH.json \\
        --baseline benchmarks/BENCH_post_serving.json [--tolerance 1.5] \\
        [--metric mean] [--allow-missing] \\
        [--tolerance-override test_bench_planned_query=3.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_TOLERANCE = 1.5
DEFAULT_METRIC = "mean"


def parse_overrides(specs: Optional[List[str]]) -> Dict[str, float]:
    """``["name=2.5", ...]`` -> ``{"name": 2.5}``; raises ValueError on a
    malformed spec or a non-positive factor."""
    overrides: Dict[str, float] = {}
    for spec in specs or []:
        pattern, sep, factor = spec.rpartition("=")
        if not sep or not pattern:
            raise ValueError(f"override {spec!r} is not of the form PATTERN=FACTOR")
        value = float(factor)  # ValueError propagates with the right message
        if value <= 0:
            raise ValueError(f"override {spec!r} has a non-positive factor")
        overrides[pattern] = value
    return overrides


def tolerance_for(name: str, default: float, overrides: Dict[str, float]) -> float:
    """The tolerance for one benchmark: exact fullname override first, then
    the longest matching substring override, else the global default."""
    if name in overrides:
        return overrides[name]
    best: Optional[str] = None
    for pattern in overrides:
        if pattern in name and (best is None or len(pattern) > len(best)):
            best = pattern
    return overrides[best] if best is not None else default


def load_benchmarks(path: Path, metric: str = DEFAULT_METRIC) -> Dict[str, float]:
    """``{fullname: stats[metric]}`` for every benchmark in a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    out: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        stats = bench.get("stats") or {}
        if metric in stats:
            out[name] = float(stats[metric])
    return out


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    overrides: Optional[Dict[str, float]] = None,
) -> Tuple[List[str], List[str], List[str]]:
    """Returns ``(regressions, missing, report_lines)``."""
    regressions: List[str] = []
    missing: List[str] = []
    report: List[str] = []
    overrides = overrides or {}
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            missing.append(name)
            report.append(f"MISSING  {name}  (baseline {base * 1000:.2f} ms)")
            continue
        current = fresh[name]
        limit = tolerance_for(name, tolerance, overrides)
        ratio = current / base if base > 0 else float("inf")
        verdict = "ok" if current <= base * limit else "REGRESSION"
        report.append(
            f"{verdict:10s} {name}  {base * 1000:.2f} ms -> {current * 1000:.2f} ms "
            f"({ratio:.2f}x, limit {limit:.2f}x)"
        )
        if verdict != "ok":
            regressions.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        report.append(f"new        {name}  {fresh[name] * 1000:.2f} ms (no baseline)")
    return regressions, missing, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="benchmark JSON of the fresh run")
    parser.add_argument(
        "--baseline",
        type=Path,
        action="append",
        required=True,
        help="committed BENCH_*.json baseline (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"fail when fresh > baseline * tolerance (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--metric", default=DEFAULT_METRIC, help="stats field to compare (default mean)"
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="do not fail when a baseline benchmark is absent from the fresh run",
    )
    parser.add_argument(
        "--tolerance-override",
        action="append",
        metavar="PATTERN=FACTOR",
        help="per-benchmark tolerance (repeatable); PATTERN matches the "
        "fullname exactly or as a substring (longest substring wins)",
    )
    args = parser.parse_args(argv)

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    try:
        overrides = parse_overrides(args.tolerance_override)
    except ValueError as error:
        parser.error(str(error))
    try:
        fresh = load_benchmarks(args.fresh, args.metric)
        baseline: Dict[str, float] = {}
        for path in args.baseline:
            baseline.update(load_benchmarks(path, args.metric))
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"check_regression: cannot load benchmark JSON: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print("check_regression: no baseline benchmarks found", file=sys.stderr)
        return 2

    regressions, missing, report = compare(baseline, fresh, args.tolerance, overrides)
    print(f"comparing {len(fresh)} fresh vs {len(baseline)} baseline benchmarks "
          f"(metric {args.metric!r}, tolerance {args.tolerance:.2f}x)")
    for line in report:
        print(" ", line)

    matched = len(baseline) - len(missing)
    if matched == 0 and args.allow_missing:
        # --allow-missing tolerates an intentionally partial run, but a run
        # matching NOTHING (e.g. after a benchmark rename) would make the
        # gate vacuous — fail loudly instead of passing on zero comparisons
        # (without the flag, the missing-benchmark failure below fires)
        print(
            "check_regression: no fresh benchmark matched any baseline "
            "entry — the gate compared nothing (renamed benchmarks?)",
            file=sys.stderr,
        )
        return 2

    failed = bool(regressions) or (bool(missing) and not args.allow_missing)
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s): {', '.join(regressions)}")
    if missing and not args.allow_missing:
        print(
            f"FAIL: {len(missing)} baseline benchmark(s) missing from the fresh run: "
            f"{', '.join(missing)} (use --allow-missing for partial runs)"
        )
    if not failed:
        print("OK: no regressions")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
