#!/usr/bin/env python
"""CI perf-regression gate: compare a fresh pytest-benchmark JSON run
against a committed ``BENCH_*.json`` baseline.

Each benchmark is matched by its ``fullname`` and compared on a stats
field (mean seconds by default); the job fails when

    fresh > baseline * tolerance

for any matched benchmark, or when a baseline benchmark is missing from
the fresh run (a silently dropped benchmark is a dead gate — pass
``--allow-missing`` for intentionally partial runs).  Benchmarks only in
the fresh run never fail: new benchmarks land before their baseline does.

The tolerance (default 1.5×) absorbs runner noise; CI passes a wider one
because the committed baselines were captured on a different machine
class than the hosted runners.  Ratio-style acceptance criteria (cached
≥ 5× uncached, fan-out ≥ 1.5×) live *inside* the benchmark suites, where
they are machine-independent; this gate guards absolute walltime drift.

Usage:
    python benchmarks/check_regression.py FRESH.json \\
        --baseline benchmarks/BENCH_post_serving.json [--tolerance 1.5] \\
        [--metric mean] [--allow-missing]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_TOLERANCE = 1.5
DEFAULT_METRIC = "mean"


def load_benchmarks(path: Path, metric: str = DEFAULT_METRIC) -> Dict[str, float]:
    """``{fullname: stats[metric]}`` for every benchmark in a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    out: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        stats = bench.get("stats") or {}
        if metric in stats:
            out[name] = float(stats[metric])
    return out


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str], List[str]]:
    """Returns ``(regressions, missing, report_lines)``."""
    regressions: List[str] = []
    missing: List[str] = []
    report: List[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in fresh:
            missing.append(name)
            report.append(f"MISSING  {name}  (baseline {base * 1000:.2f} ms)")
            continue
        current = fresh[name]
        ratio = current / base if base > 0 else float("inf")
        verdict = "ok" if current <= base * tolerance else "REGRESSION"
        report.append(
            f"{verdict:10s} {name}  {base * 1000:.2f} ms -> {current * 1000:.2f} ms "
            f"({ratio:.2f}x, limit {tolerance:.2f}x)"
        )
        if verdict != "ok":
            regressions.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        report.append(f"new        {name}  {fresh[name] * 1000:.2f} ms (no baseline)")
    return regressions, missing, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="benchmark JSON of the fresh run")
    parser.add_argument(
        "--baseline",
        type=Path,
        action="append",
        required=True,
        help="committed BENCH_*.json baseline (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"fail when fresh > baseline * tolerance (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--metric", default=DEFAULT_METRIC, help="stats field to compare (default mean)"
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="do not fail when a baseline benchmark is absent from the fresh run",
    )
    args = parser.parse_args(argv)

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    try:
        fresh = load_benchmarks(args.fresh, args.metric)
        baseline: Dict[str, float] = {}
        for path in args.baseline:
            baseline.update(load_benchmarks(path, args.metric))
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"check_regression: cannot load benchmark JSON: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print("check_regression: no baseline benchmarks found", file=sys.stderr)
        return 2

    regressions, missing, report = compare(baseline, fresh, args.tolerance)
    print(f"comparing {len(fresh)} fresh vs {len(baseline)} baseline benchmarks "
          f"(metric {args.metric!r}, tolerance {args.tolerance:.2f}x)")
    for line in report:
        print(" ", line)

    failed = bool(regressions) or (bool(missing) and not args.allow_missing)
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s): {', '.join(regressions)}")
    if missing and not args.allow_missing:
        print(
            f"FAIL: {len(missing)} baseline benchmark(s) missing from the fresh run: "
            f"{', '.join(missing)} (use --allow-missing for partial runs)"
        )
    if not failed:
        print("OK: no regressions")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
