"""Q×N scaling microbenchmarks for the vectorized query kernels.

Sweeps query-box counts Q ∈ {1, 100, 10 000} against compressed-table sizes
N ∈ {1 000, 100 000} so the θ-join's blocked all-pairs intersection and the
segmented box merge have a measurable latency trajectory across releases.
``benchmarks/BENCH_baseline.json`` holds the Figure-8 numbers captured at
the seed commit (pre-vectorization) for comparison; run

    PYTHONPATH=src python -m pytest benchmarks/test_bench_fig8_query.py \
        --benchmark-json=BENCH_current.json

to produce a comparable post-change snapshot.
"""

import numpy as np
import pytest

from repro.core.compressed import KIND_ABS, KIND_REL, CompressedLineage
from repro.core.query import CellBoxSet, merge_boxes, theta_join

Q_SIZES = [1, 100, 10_000]
N_SIZES = [1_000, 100_000]


def synthetic_table(n_rows: int, span: int = 4) -> CompressedLineage:
    """A 1-D backward table of *n_rows* disjoint key ranges; every other row
    uses the relative value encoding so de-relativization is exercised."""
    starts = np.arange(n_rows, dtype=np.int64) * span
    key_lo = starts[:, None]
    key_hi = key_lo + (span - 1)
    kinds = np.where(np.arange(n_rows) % 2 == 0, KIND_REL, KIND_ABS).astype(np.int8)
    refs = np.where(kinds == KIND_REL, 0, -1).astype(np.int16)
    val_lo = np.where(kinds == KIND_REL, 0, starts).astype(np.int64)
    val_hi = np.where(kinds == KIND_REL, span - 1, starts + span - 1).astype(np.int64)
    dim = n_rows * span
    return CompressedLineage(
        key_side="output",
        out_name="B",
        in_name="A",
        out_shape=(dim,),
        in_shape=(dim,),
        key_lo=key_lo,
        key_hi=key_hi,
        val_kind=kinds[:, None],
        val_ref=refs[:, None],
        val_lo=val_lo[:, None],
        val_hi=val_hi[:, None],
    )


def synthetic_query(table: CompressedLineage, n_boxes: int, seed: int = 0) -> CellBoxSet:
    rng = np.random.default_rng(seed)
    dim = table.key_shape[0]
    lo = rng.integers(0, dim - 8, size=(n_boxes, 1)).astype(np.int64)
    hi = lo + rng.integers(0, 8, size=(n_boxes, 1))
    return CellBoxSet("B", table.key_shape, lo, hi)


@pytest.mark.parametrize("n_rows", N_SIZES)
@pytest.mark.parametrize("n_boxes", Q_SIZES)
def test_theta_join_scaling(benchmark, n_boxes, n_rows):
    table = synthetic_table(n_rows)
    query = synthetic_query(table, n_boxes)
    stats = {}
    # bound wall-clock on the largest Q×N combinations: one warm-up plus a
    # fixed, small number of measured rounds
    rounds = 2 if n_boxes * n_rows >= 10**8 else 10
    result = benchmark.pedantic(
        lambda: theta_join(query, table, merge=True, stats=stats),
        rounds=rounds,
        warmup_rounds=1,
    )
    benchmark.extra_info["query_boxes"] = n_boxes
    benchmark.extra_info["table_rows"] = n_rows
    benchmark.extra_info["join_blocks"] = stats["join_blocks"]
    benchmark.extra_info["result_boxes"] = len(result)
    assert not result.is_empty()


@pytest.mark.parametrize("n_boxes", [1_000, 10_000, 50_000])
def test_merge_boxes_scaling(benchmark, n_boxes):
    rng = np.random.default_rng(1)
    lo = np.stack(
        [rng.integers(0, 2_000, size=n_boxes), rng.integers(0, 50, size=n_boxes)], axis=1
    ).astype(np.int64)
    hi = lo + rng.integers(0, 6, size=(n_boxes, 2))
    mlo, mhi = benchmark.pedantic(lambda: merge_boxes(lo, hi), rounds=10, warmup_rounds=1)
    benchmark.extra_info["boxes_in"] = n_boxes
    benchmark.extra_info["boxes_out"] = int(mlo.shape[0])
    assert mlo.shape[0] <= n_boxes


@pytest.mark.parametrize("n_boxes", [1_000, 50_000])
def test_count_cells_scaling(benchmark, n_boxes):
    # a 2000×2000 domain keeps the coordinate-compressed grid within the
    # sweep's budget so this measures the exact grid count, not a fallback
    rng = np.random.default_rng(2)
    side = 2_000
    lo = np.stack(
        [rng.integers(0, side - 10, size=n_boxes), rng.integers(0, side - 10, size=n_boxes)],
        axis=1,
    ).astype(np.int64)
    hi = lo + rng.integers(0, 10, size=(n_boxes, 2))
    box_set = CellBoxSet("A", (side, side), lo, hi)
    count = benchmark.pedantic(box_set.count_cells, rounds=5, warmup_rounds=1)
    benchmark.extra_info["boxes"] = n_boxes
    benchmark.extra_info["cells"] = count
    assert count > 0
