"""Benchmark bootstrap: make the in-tree package importable without installation."""

import gc
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(autouse=True)
def _collect_between_benchmarks():
    """Release workload arrays promptly so a full benchmark session stays
    within a laptop's memory budget (each case builds its own pipelines)."""
    yield
    gc.collect()
