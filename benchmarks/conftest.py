"""Benchmark bootstrap: in-tree imports, GC hygiene, and the peak-memory
probe that rides along with every timed benchmark.

``BenchmarkFixture.__call__`` / ``.pedantic`` are wrapped (class-level —
the plugin type-checks the ``benchmark`` funcarg, so the fixture cannot be
shadowed by a proxy) so each benchmark body runs once *before* the timed
rounds under :mod:`tracemalloc`, recording the peak Python-allocation
footprint into ``extra_info["tracemalloc_peak_kb"]``.  The benchmark JSON
then carries a memory axis alongside mean latency, and a zero-copy
regression (e.g. an accidental ``astype(int64)`` reappearing on the
hydration path) shows up as a step in peak KB even when a fast machine
hides the latency cost.  The probe invocation is untimed (it acts as one
extra warmup round), so recorded latencies are unaffected; under
``--benchmark-disable`` (the CI smoke run) the probe is skipped entirely.
Set ``BENCH_MEMPROBE=0`` to opt out.
"""

import gc
import os
import sys
import tracemalloc
from pathlib import Path

import pytest
from pytest_benchmark.fixture import BenchmarkFixture

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(autouse=True)
def _collect_between_benchmarks():
    """Release workload arrays promptly so a full benchmark session stays
    within a laptop's memory budget (each case builds its own pipelines)."""
    yield
    gc.collect()


def _probe(fixture, func, args=(), kwargs=None):
    """Run the benchmark body once under tracemalloc, untimed."""
    if os.environ.get("BENCH_MEMPROBE", "1") == "0":
        return
    if getattr(fixture, "disabled", False):
        return
    tracemalloc.start()
    try:
        func(*args, **(kwargs or {}))
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    fixture.extra_info["tracemalloc_peak_kb"] = round(peak / 1024, 1)
    # drop the probe run's garbage before any timed round measures it
    gc.collect()


_original_call = BenchmarkFixture.__call__
_original_pedantic = BenchmarkFixture.pedantic


def _probed_call(self, function_to_benchmark, *args, **kwargs):
    _probe(self, function_to_benchmark, args, kwargs)
    return _original_call(self, function_to_benchmark, *args, **kwargs)


def _probed_pedantic(self, target, args=(), kwargs=None, **options):
    if options.get("setup") is None:
        # with setup=, the real call args are built per round by the setup
        # callable — probing target() bare would crash; skip the probe
        _probe(self, target, args, kwargs)
    return _original_pedantic(self, target, args=args, kwargs=kwargs, **options)


BenchmarkFixture.__call__ = _probed_call
BenchmarkFixture.pedantic = _probed_pedantic
