"""Observability overhead gate: instrumented hot paths vs a registry- and
tracing-disabled run.

The whole observability layer is built to be cheap when idle — a counter
``inc`` is one short uncontended mutex, a disabled update is one
module-global read, an inactive span is one ContextVar read.  This suite
pins that claim to a number: the same uncached serving mix (the hottest
instrumented path: executor → plan → per-shard prefetch → θ-join →
cache install, metrics and spans at every stage) runs with observability
**enabled** and with ``repro.obs.set_enabled(False)``, interleaved
A/B/A/B to cancel thermal and cache drift, and the medians must agree to
within 5% (``BENCH_OBS_MAX_OVERHEAD`` widens the gate on noisy runners;
sub-second QPS measurements on shared CI hardware jitter by more than
honest instrumentation costs).

``benchmarks/BENCH_post_obs.json`` records the numbers captured when the
observability layer landed; reproduce with

    PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py \
        --benchmark-json=BENCH_current.json
"""

import os
import statistics
import time


from repro import DSLog
from repro.core.relation import LineageRelation
from repro.obs import enabled as obs_enabled
from repro.obs import set_enabled
from repro.service.query import QueryExecutor

SHAPE = (24, 24)
LANES = 2
HOPS = 3
PASSES = 6  # A/B pairs (ABBA-alternated); medians taken per arm
ROUNDS = 40  # mix repetitions inside one timed pass (~0.3 s: long enough
#              that scheduler noise stops dominating the per-pass QPS)

_results = {}
_dirs = iter(range(1_000_000))


def scatter(in_name, out_name):
    rows, cols = SHAPE
    pairs = []
    for i in range(rows):
        for j in range(cols):
            pairs.append(((i, j), (i, j)))
            pairs.append(((i, j), ((i + 1) % rows, j)))
    return LineageRelation.from_pairs(
        pairs, SHAPE, SHAPE, in_name=in_name, out_name=out_name
    )


def lane_arrays(lane):
    return [f"lane{lane}_a{i}" for i in range(HOPS + 1)]


def build_catalog(root):
    log = DSLog(root, backend="sharded", num_shards=2, autosync=False)
    for lane in range(LANES):
        names = lane_arrays(lane)
        for name in names:
            log.define_array(name, SHAPE)
        for a, b in zip(names, names[1:]):
            log.add_lineage(a, b, relation=scatter(a, b))
    log.sync()
    return log


def build_mix():
    mix = []
    for lane in range(LANES):
        names = lane_arrays(lane)
        mix.append((names, [slice(0, 8), slice(0, 8)]))
        mix.append((list(reversed(names)), [(1, 1), (5, 9)]))
        mix.append((names, [(2, 2), (7, 17), (20, 5)]))
    return mix


def time_pass(executor, mix):
    """QPS of one uncached pass: the result cache is off (cache_entries=0),
    so every query runs the full instrumented plan/prefetch/join path."""
    start = time.monotonic()
    for _ in range(ROUNDS):
        executor.map_queries(mix)
    wall = time.monotonic() - start
    return ROUNDS * len(mix) / wall


def max_overhead():
    return float(os.environ.get("BENCH_OBS_MAX_OVERHEAD", "0.05"))


def measure_overhead(root):
    log = build_catalog(root)
    mix = build_mix()
    enabled_qps = []
    disabled_qps = []
    try:
        with QueryExecutor(log, max_workers=1, cache_entries=0) as ex:
            ex.map_queries(mix)  # warm the table cache, untimed
            for i in range(PASSES):
                # alternate which arm goes first (ABBA) so thermal drift
                # and warmup never systematically favor one arm
                first_enabled = i % 2 == 0
                for arm in (first_enabled, not first_enabled):
                    set_enabled(arm)
                    (enabled_qps if arm else disabled_qps).append(time_pass(ex, mix))
    finally:
        set_enabled(True)
        log.close()
    enabled = statistics.median(enabled_qps)
    disabled = statistics.median(disabled_qps)
    return {
        "enabled_qps": enabled,
        "disabled_qps": disabled,
        "overhead": (disabled - enabled) / disabled if disabled else 0.0,
        "enabled_passes": enabled_qps,
        "disabled_passes": disabled_qps,
    }


def test_bench_obs_overhead(benchmark, tmp_path):
    def run():
        result = measure_overhead(tmp_path / f"obs-db{next(_dirs)}")
        _results["overhead"] = result
        return result

    result = benchmark.pedantic(run, rounds=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {k: v for k, v in result.items() if not k.endswith("_passes")}
    )


def test_obs_overhead_within_budget(tmp_path):
    """Acceptance criterion: instrumentation costs ≤ 5% of the
    registry-disabled throughput on the uncached serving path."""
    assert obs_enabled()  # the gate must measure the real default
    result = _results.get("overhead")
    if result is None:
        result = measure_overhead(tmp_path / "db")
    budget = max_overhead()
    assert result["overhead"] <= budget, (
        f"observability overhead {result['overhead']:.1%} exceeds {budget:.0%} "
        f"(enabled {result['enabled_qps']:.1f} qps, "
        f"disabled {result['disabled_qps']:.1f} qps)"
    )


def test_set_enabled_restores():
    """The A/B switch itself: disabling freezes updates, re-enabling
    resumes them (guards the benchmark's own methodology)."""
    from repro.obs import REGISTRY

    counter = REGISTRY.counter("bench_obs_probe_total", "benchmark probe")
    before = counter.value
    set_enabled(False)
    try:
        counter.inc()
        assert counter.value == before
    finally:
        set_enabled(True)
    counter.inc()
    assert counter.value == before + 1
