"""Ablation benchmarks for DSLog design choices.

* merge step on/off (DSLog vs DSLog-NoMerge) — the paper reports that the
  merge between θ-joins improves query latency with minimal overhead;
* relative value transformation on/off — ProvRC's second pass is what
  collapses element-wise lineage to a single row;
* GZip stage on/off (ProvRC vs ProvRC-GZip) on unstructured lineage.
"""

import numpy as np
import pytest

from repro.capture.analytic import elementwise_lineage, selection_lineage
from repro.core.provrc import compress
from repro.core.serialize import serialize_compressed, serialize_compressed_gzip
from repro.experiments.fig8_query_latency import query_cells_for_selectivity
from repro.workloads.pipelines import resnet_block_pipeline


@pytest.mark.parametrize("merge", [True, False], ids=["merge", "no-merge"])
def test_ablation_merge_step(benchmark, merge):
    pipeline = resnet_block_pipeline(24, 24)
    log = pipeline.load_into_dslog()
    cells = query_cells_for_selectivity(pipeline.first_shape, 0.1, seed=3)
    result = benchmark(lambda: log.prov_query(pipeline.path, cells, merge=merge).count_cells())
    benchmark.extra_info["merge"] = merge
    benchmark.extra_info["result_cells"] = result


@pytest.mark.parametrize("relative", [True, False], ids=["relative", "no-relative"])
def test_ablation_relative_transform(benchmark, relative):
    relation = elementwise_lineage((50_000,))
    table = benchmark(lambda: compress(relation, relative=relative))
    benchmark.extra_info["rows"] = len(table)
    if relative:
        assert len(table) == 1
    else:
        assert len(table) == 50_000


@pytest.mark.parametrize("gzip_stage", [False, True], ids=["provrc", "provrc-gzip"])
def test_ablation_gzip_stage(benchmark, gzip_stage):
    rng = np.random.default_rng(5)
    order = np.argsort(rng.normal(size=30_000), kind="stable")
    relation = selection_lineage(order, (30_000,))
    table = compress(relation)
    serialize = serialize_compressed_gzip if gzip_stage else serialize_compressed
    payload = benchmark(lambda: serialize(table))
    benchmark.extra_info["bytes"] = len(payload)
